//! The sharded service's routing front-end.
//!
//! Classifies each [`QueryKind`] submitted to a
//! [`ShardedGraphService`](crate::shard::ShardedGraphService):
//!
//! * **Point lookups** (degree / neighbors) are *owner-routed*: exactly one
//!   shard — the one whose slice owns the vertex — sees the request.
//! * **Gather-mergeable analytics** (every Table 1 workload whose
//!   [`GatherMode`] is not [`GatherMode::Whole`]) are *scattered*: the
//!   router fans one [`QueryKind::WorkloadPartial`] leg per shard, each
//!   shard reduces the deterministic run over its owned slice, and the
//!   gather step merges the typed [`Partial`]s
//!   (sum / max / arg-max per workload) back into the exact unsharded
//!   answer.
//! * **Non-mergeable workloads** (currently only BCC, whose per-vertex
//!   output has no canonical owner-local reduction) fall back to running
//!   *whole* on the designated primary shard — the documented path that
//!   keeps all 20 workloads servable under sharding.
//! * **Debug hooks** are spread round-robin by request id.
//!
//! The response carries the decision ([`Route`]) plus, for scattered
//! requests, the straggler penalty ([`QueryResponse::gather_wait`]), so
//! load drivers can report routed-vs-scattered traffic and gather latency
//! without asking the service.
//!
//! **Replica routing.** When a shard runs more than one replica core
//! ([`crate::service::ServiceConfig::replicas`]), every dispatch that
//! lands on a shard — owner-routed lookups, each scattered leg, the
//! primary-shard whole run, and the debug spread — additionally picks a
//! replica by the service's [`RoutingPolicy`]: `round-robin` walks the
//! shard's replicas from a seeded offset, `least-loaded` picks the replica
//! with the smallest queue-depth gauge (ties broken by the lowest replica
//! id). Replicas serve the same epoch-pinned snapshot and share the
//! shard's result cache, so the pick affects latency only, never answers.

use crate::epoch::{WriterReport, WriterStats};
use crate::request::{
    QueryError, QueryKind, QueryOutput, QueryRequest, QueryResponse, Route,
};
use crate::service::{GraphService, ReplicaSeries, ShardSnapshot, SubmitError, Ticket};
use crate::shard::ShardedGraphService;
use std::time::{Duration, Instant};
use vcgp_core::service::{gather_mode, GatherMode, Partial};
use vcgp_graph::Mutation;

/// How the router picks a replica core within a shard. Irrelevant (and
/// unobservable beyond [`Route::Routed`]'s replica field) when every shard
/// runs a single replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingPolicy {
    /// Walk the shard's replicas in order from a per-shard seeded offset —
    /// deterministic dispatch *sequence* per shard, uniform in the long
    /// run, oblivious to load.
    #[default]
    RoundRobin,
    /// Pick the replica with the smallest instantaneous queue depth, ties
    /// broken by the lowest replica id — the load-aware policy that steers
    /// new work away from a replica stuck behind a slow request.
    LeastLoaded,
}

impl RoutingPolicy {
    /// Parses a policy name (`round-robin` / `least-loaded`,
    /// case-insensitive).
    pub fn parse(s: &str) -> Result<RoutingPolicy, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "round-robin" => Ok(RoutingPolicy::RoundRobin),
            "least-loaded" => Ok(RoutingPolicy::LeastLoaded),
            other => Err(format!(
                "unknown routing policy {other:?} (expected round-robin or least-loaded)"
            )),
        }
    }

    /// The canonical name, as accepted by [`RoutingPolicy::parse`].
    pub fn label(&self) -> &'static str {
        match self {
            RoutingPolicy::RoundRobin => "round-robin",
            RoutingPolicy::LeastLoaded => "least-loaded",
        }
    }
}

/// A pending response from either a single queue or a scattered fan-out.
pub enum AnyTicket {
    /// One underlying ticket; the route is patched into the response.
    Single {
        /// The queue ticket.
        ticket: Ticket,
        /// How the request was dispatched.
        route: Route,
    },
    /// One leg per shard, merged at wait time.
    Scattered(GatherTicket),
}

impl AnyTicket {
    /// The submitted request's id.
    pub fn id(&self) -> u64 {
        match self {
            AnyTicket::Single { ticket, .. } => ticket.id(),
            AnyTicket::Scattered(g) => g.id,
        }
    }

    /// Blocks until the response (gather-merged when scattered) arrives.
    pub fn wait(self) -> QueryResponse {
        match self {
            AnyTicket::Single { ticket, route } => {
                let mut resp = ticket.wait();
                resp.route = route;
                resp
            }
            AnyTicket::Scattered(g) => g.wait(),
        }
    }
}

/// The gather side of a scattered request: one ticket per shard leg.
pub struct GatherTicket {
    id: u64,
    legs: Vec<Ticket>,
}

impl GatherTicket {
    /// Collects every leg and merges them into one response.
    ///
    /// Cost metrics aggregate across legs: `attempts` and `queue_wait` take
    /// the maximum (the binding constraint), `service_time` and `backoff`
    /// sum (aggregate fleet compute burned), and `gather_wait` is the time
    /// spent waiting for the remaining legs after the first collected leg
    /// had answered — the straggler penalty of the fan-out.
    ///
    /// On success every leg is a [`QueryOutput::WorkloadPartial`]; the
    /// merged answer is [`Partial::finish`] of the folded partials,
    /// `supersteps` is the maximum (every leg runs the same deterministic
    /// schedule, so this equals the single-instance count) and `messages`
    /// the sum (aggregate traffic). If any leg failed, the merged response
    /// carries the first failure in shard order.
    pub fn wait(self) -> QueryResponse {
        let shards = self.legs.len() as u32;
        let mut responses = Vec::with_capacity(self.legs.len());
        let mut first_collected: Option<Instant> = None;
        for leg in self.legs {
            responses.push(leg.wait());
            first_collected.get_or_insert_with(Instant::now);
        }
        let gather_wait = first_collected.map_or(Duration::ZERO, |t| t.elapsed());

        let mut attempts = 0u32;
        let mut queue_wait = Duration::ZERO;
        let mut service_time = Duration::ZERO;
        let mut backoff = Duration::ZERO;
        for r in &responses {
            attempts = attempts.max(r.attempts);
            queue_wait = queue_wait.max(r.queue_wait);
            service_time += r.service_time;
            backoff += r.backoff;
        }

        let result = merge_legs(&responses);
        QueryResponse {
            id: self.id,
            result,
            attempts,
            queue_wait,
            service_time,
            backoff,
            route: Route::Scattered { shards },
            gather_wait,
        }
    }
}

/// Folds scattered legs into the global workload output (or the first
/// per-leg failure in shard order).
fn merge_legs(responses: &[QueryResponse]) -> Result<QueryOutput, QueryError> {
    let mut merged: Option<Partial> = None;
    let mut supersteps = 0u64;
    let mut messages = 0u64;
    for r in responses {
        match &r.result {
            Err(e) => return Err(e.clone()),
            Ok(QueryOutput::WorkloadPartial {
                partial,
                supersteps: s,
                messages: m,
            }) => {
                supersteps = supersteps.max(*s);
                messages += *m;
                merged = Some(match merged {
                    None => *partial,
                    Some(acc) => acc.merge(*partial),
                });
            }
            Ok(_) => {
                return Err(QueryError::Unsupported(
                    "gather: leg returned a non-partial output".to_string(),
                ))
            }
        }
    }
    match merged {
        Some(p) => Ok(QueryOutput::Workload {
            answer: p.finish(),
            supersteps,
            messages,
        }),
        None => Err(QueryError::Unsupported("gather: no legs".to_string())),
    }
}

impl ShardedGraphService {
    /// Routes and submits one request. Point lookups go to the owning
    /// shard; gather-mergeable workloads scatter to every shard;
    /// non-mergeable workloads (and externally submitted partials) run on
    /// the primary shard; debug hooks spread by request id.
    ///
    /// Fails with [`SubmitError::Closed`] once the service is closed. When
    /// a scatter fails midway, legs already accepted still execute but
    /// their responses are abandoned (dropped tickets), matching the
    /// semantics of dropping any other ticket.
    ///
    /// Every submission is pinned to the currently serving epoch — **one**
    /// snapshot across all legs of a scatter, so a swap landing mid-fan-out
    /// can never hand different legs different graph versions (the gather
    /// merge would silently mix epochs otherwise).
    pub fn submit(&self, mut req: QueryRequest) -> Result<AnyTicket, SubmitError> {
        req.epoch = Some(self.epochs.current());
        match req.kind {
            QueryKind::Degree(v) | QueryKind::Neighbors(v) => {
                let shard = self.owner(v);
                let (ticket, replica) = self.shards[shard].submit(self.routing, req)?;
                Ok(AnyTicket::Single {
                    ticket,
                    route: Route::Routed { shard: shard as u32, replica },
                })
            }
            QueryKind::Workload(w)
                if self.shards.len() > 1 && gather_mode(w) != GatherMode::Whole =>
            {
                let id = req.id;
                let legs = self
                    .shards
                    .iter()
                    .map(|sh| {
                        let mut leg = req.clone();
                        leg.kind = QueryKind::WorkloadPartial(w);
                        sh.submit(self.routing, leg).map(|(ticket, _)| ticket)
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(AnyTicket::Scattered(GatherTicket { id, legs }))
            }
            QueryKind::Workload(_) | QueryKind::WorkloadPartial(_) => {
                let shard = self.primary;
                let (ticket, replica) = self.shards[shard].submit(self.routing, req)?;
                Ok(AnyTicket::Single {
                    ticket,
                    route: Route::Routed { shard: shard as u32, replica },
                })
            }
            QueryKind::DebugSleep(_) | QueryKind::DebugPanic => {
                let shard = (req.id % self.shards.len() as u64) as usize;
                let (ticket, replica) = self.shards[shard].submit(self.routing, req)?;
                Ok(AnyTicket::Single {
                    ticket,
                    route: Route::Routed { shard: shard as u32, replica },
                })
            }
        }
    }
}

/// What the load driver needs from a service: submit an operation, and
/// report per-shard counters at the end of the run. Implemented by the
/// single-instance [`GraphService`] (one implicit shard) and by
/// [`ShardedGraphService`], so `driver::run` is generic over both.
pub trait StressTarget: Sync {
    /// Submits one operation.
    fn submit_op(&self, req: QueryRequest) -> Result<AnyTicket, SubmitError>;
    /// Number of shards (1 for a single-instance service).
    fn num_shards(&self) -> usize;
    /// Replica cores per shard (1 for a single-instance service).
    fn replicas_per_shard(&self) -> usize {
        1
    }
    /// The replica-routing policy's report label.
    fn routing_label(&self) -> &'static str {
        RoutingPolicy::RoundRobin.label()
    }
    /// Per-shard identity + counters.
    fn shard_snapshots(&self) -> Vec<ShardSnapshot>;
    /// Resets every replica core's service-time recorder to measure from
    /// `origin` with the given interval width — the driver calls this at
    /// each phase start so the per-replica series are phase-scoped.
    fn reset_service_log(&self, origin: Instant, interval_ns: u64);
    /// Per-shard, per-replica service-time series since the last reset
    /// (outer index = shard, inner = replica).
    fn replica_series(&self) -> Vec<Vec<ReplicaSeries>>;
    /// Submits one mutation to the write buffer. The default target is
    /// read-only.
    fn submit_mutation(&self, mutation: Mutation) -> Result<u64, SubmitError> {
        let _ = mutation;
        Err(SubmitError::ReadOnly)
    }
    /// Snapshots the writer counters and resets the freshness histograms
    /// (run scoping). A no-op returning zeros on a read-only target.
    fn writer_baseline(&self) -> WriterStats {
        WriterStats::default()
    }
    /// Writer counters plus freshness histograms (empty on a read-only
    /// target).
    fn writer_report(&self) -> WriterReport {
        WriterReport::default()
    }
}

impl StressTarget for GraphService {
    fn submit_op(&self, req: QueryRequest) -> Result<AnyTicket, SubmitError> {
        Ok(AnyTicket::Single {
            ticket: self.submit(req)?,
            route: Route::Direct,
        })
    }

    fn num_shards(&self) -> usize {
        1
    }

    fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        vec![self.shard_snapshot()]
    }

    fn reset_service_log(&self, origin: Instant, interval_ns: u64) {
        self.reset_service_log(origin, interval_ns);
    }

    fn replica_series(&self) -> Vec<Vec<ReplicaSeries>> {
        self.replica_series()
    }

    fn submit_mutation(&self, mutation: Mutation) -> Result<u64, SubmitError> {
        self.submit_mutation(mutation)
    }

    fn writer_baseline(&self) -> WriterStats {
        self.writer_baseline()
    }

    fn writer_report(&self) -> WriterReport {
        self.writer_report()
    }
}

impl StressTarget for ShardedGraphService {
    fn submit_op(&self, req: QueryRequest) -> Result<AnyTicket, SubmitError> {
        self.submit(req)
    }

    fn num_shards(&self) -> usize {
        self.num_shards()
    }

    fn replicas_per_shard(&self) -> usize {
        self.replicas_per_shard()
    }

    fn routing_label(&self) -> &'static str {
        self.routing.label()
    }

    fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        self.shard_snapshots()
    }

    fn reset_service_log(&self, origin: Instant, interval_ns: u64) {
        self.reset_service_log(origin, interval_ns);
    }

    fn replica_series(&self) -> Vec<Vec<ReplicaSeries>> {
        self.replica_series()
    }

    fn submit_mutation(&self, mutation: Mutation) -> Result<u64, SubmitError> {
        self.submit_mutation(mutation)
    }

    fn writer_baseline(&self) -> WriterStats {
        self.writer_baseline()
    }

    fn writer_report(&self) -> WriterReport {
        self.writer_report()
    }
}
