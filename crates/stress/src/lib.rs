//! `vcgp-stress` — a graph-query service layer plus a concurrent,
//! rate-limited workload driver.
//!
//! The batch harness (`vcgp-core`) answers the paper's question for one
//! workload at a time on purpose-built inputs. This crate asks the
//! *production* question the roadmap points at: what does a vertex-centric
//! engine look like as a resident service under concurrent, heavy traffic?
//!
//! * [`request`] — typed [`request::QueryRequest`]s (any Table 1 workload,
//!   plus point lookups) with per-attempt timeouts and absolute deadlines,
//!   answered by [`request::QueryResponse`]s carrying per-request cost
//!   metrics;
//! * [`service`] — [`service::GraphService`]: the graph loaded once behind
//!   an [`std::sync::Arc`], a bounded MPMC job queue, OS-thread executors,
//!   post-hoc timeouts with bounded seeded-jitter retries, contained
//!   panics, queue-full admission policies (block / reject), deadline
//!   early drops, and graceful draining shutdown;
//! * [`shard`] + [`router`] — the sharded service:
//!   [`shard::ShardedGraphService`] splits vertex ownership across S
//!   shards, each running `R ≥ 1` replica cores over the same slice
//!   (placement via the engine's partitioner, so `VCGP_PARTITIONING`
//!   applies) and the router owner-routes point lookups, scatters
//!   gather-mergeable analytics with typed partial merges, falls back to a
//!   primary shard for the rest, and picks replicas by a pluggable policy
//!   (seeded round-robin or least-loaded queue depth);
//! * [`cache`] — the per-core result cache: a capacity-bounded, segmented
//!   LRU memoizing `(workload, graph fingerprint, seed) → answer` for whole
//!   analytics answers *and* scattered per-shard partials, with
//!   deterministic (wall-clock-free) eviction and invalidation hooks for
//!   graph swaps / re-shards;
//! * [`epoch`] — live mutations: a bounded write buffer drained by a
//!   writer thread that applies seeded mutation batches off the serving
//!   path and installs immutable epoch snapshots (monotone ids, atomic
//!   swap, incremental shard-slice rebuild); queries pin their epoch at
//!   submission, so reads are snapshot-isolated while the graph evolves;
//! * [`rate`] — a GCRA token bucket over integer nanoseconds, exactly
//!   testable because it never reads a clock;
//! * [`mix`] — deterministic operation mixes: `(seed, index) → operation`
//!   as a pure function, so a fixed seed reproduces the exact sequence
//!   regardless of client interleaving;
//! * [`scenario`] + [`dist`] + [`interval`] — the scenario engine:
//!   declarative load specs (ordered warmup/measure/cooldown phases, each
//!   with its own stop criterion, rate, client count, and weighted op mix
//!   over per-op seeded key distributions) parsed from a dependency-free
//!   line format, resolved against the resident graph, and logged as
//!   per-interval latency histograms whose sums fold *exactly* to the
//!   end-of-run totals; legacy preset flags desugar to one-phase scenarios
//!   bit-identical to their historical op streams;
//! * [`driver`] — the load generator: client threads, token-bucket pacing
//!   (or unthrottled), coordinated-omission-corrected latency plus pure
//!   service time in mergeable log-bucketed histograms, and JSON/markdown
//!   reports via `vcgp-testkit`'s emitters;
//! * [`json`] — a minimal JSON reader (hosted in `vcgp-testkit` so bench
//!   binaries can gate on their own reports too) used to validate the
//!   driver's reports.
//!
//! Run the driver with `cargo run --release -p vcgp-stress --bin stress`.

pub mod cache;
pub mod dist;
pub mod driver;
pub mod epoch;
pub mod interval;
pub use vcgp_testkit::json;
pub mod mix;
pub mod rate;
pub mod request;
pub mod router;
pub mod scenario;
pub mod service;
pub mod shard;

pub use cache::{CacheKey, CacheScope, CacheStats, CachedAnswer, ResultCache};
pub use driver::{run, run_scenario, DriverConfig, PhaseReport, StressReport};
pub use epoch::{
    mutation_op, EpochSnapshot, MutationConfig, ShardSlice, WriterReport, WriterStats,
};
pub use dist::{DistSpec, KeySampler};
pub use interval::{IntervalSeries, IntervalSlot};
pub use mix::{Mix, Zipf};
pub use rate::TokenBucket;
pub use scenario::{OpClass, OpSpec, Phase, PhaseMix, PhaseSpec, Scenario, ScenarioSpec, SpanSpec};
pub use request::{QueryError, QueryKind, QueryOutput, QueryRequest, QueryResponse, Route};
pub use router::{AnyTicket, GatherTicket, RoutingPolicy, StressTarget};
pub use service::{
    GraphService, QueueFullPolicy, ReplicaSeries, ReplicaSnapshot, ServiceConfig, ServiceStats,
    ShardSnapshot, SubmitError, Ticket,
};
pub use shard::ShardedGraphService;
