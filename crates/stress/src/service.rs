//! The graph-query service: a resident graph behind a bounded job queue
//! drained by a pool of OS-thread executors.
//!
//! The graph is loaded once and shared via [`Arc`]; callers submit
//! [`QueryRequest`]s and receive a [`Ticket`] whose [`Ticket::wait`]
//! blocks for the [`QueryResponse`]. The queue is bounded — what happens at
//! capacity is the [`QueueFullPolicy`]: [`QueueFullPolicy::Block`] applies
//! backpressure to submitters, [`QueueFullPolicy::Reject`] sheds the
//! request immediately with [`QueryError::Rejected`].
//!
//! The queue + executor machinery lives in the crate-internal [`Core`],
//! parameterized by an execution backend. [`GraphService`] is one core over
//! the full resident graph; the sharded service
//! ([`crate::shard::ShardedGraphService`]) runs `R ≥ 1` replica cores per
//! shard, each over the same vertex slice (see
//! [`ServiceConfig::replicas`]).
//!
//! Failure handling:
//! * attempts whose execution exceeds the request's per-attempt timeout are
//!   retried with exponential backoff plus deterministic jitter (seeded via
//!   the workspace `SplitMix64`), up to a configured attempt cap — the
//!   Pregel engine cannot be interrupted mid-superstep, so the timeout is
//!   enforced post-hoc;
//! * panics inside a workload are caught per request: the executor survives
//!   and the caller gets [`QueryError::Panicked`];
//! * requests whose absolute deadline has already passed when an executor
//!   dequeues them are answered [`QueryError::DeadlineExceeded`] without
//!   running the workload (an *early drop*, counted separately from
//!   timeouts);
//! * shutdown is graceful: [`GraphService::close`] stops admissions, then
//!   executors drain everything already accepted, so no accepted request
//!   loses its response.
//!
//! Result caching: each shard shares one [`ResultCache`] across its
//! replica cores (unless [`ServiceConfig::cache_capacity`] is zero).
//! [`Core::submit`] consults it *before* enqueueing — a hit is answered
//! immediately from the memoized `(workload, graph fingerprint, seed)`
//! entry without consuming a queue slot or an executor — and executors
//! insert every freshly computed workload answer (whole or scattered leg)
//! on completion. Keys carry no replica identity, so an answer computed on
//! any replica serves every replica of the shard.

use crate::cache::{CacheKey, CacheScope, CachedAnswer, ResultCache};
use crate::epoch::{
    spawn_writer, EpochManager, EpochRebuild, EpochSnapshot, MutationConfig, WriterReport,
    WriterStats,
};
use crate::interval::IntervalSeries;
use crate::request::{QueryError, QueryKind, QueryOutput, QueryRequest, QueryResponse, Route};
use crate::router::RoutingPolicy;
use vcgp_testkit::LogHistogram;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use vcgp_core::fingerprint::graph_fingerprint;
use vcgp_graph::rng::mix3;
use vcgp_graph::{apply_batch, ApplyStats, Graph, Mutation, SplitMix64};
use vcgp_pregel::PregelConfig;

/// What [`Core::submit`] does when the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueFullPolicy {
    /// Block the submitter until a slot frees up (backpressure).
    #[default]
    Block,
    /// Shed the request: the returned ticket resolves immediately to
    /// [`QueryError::Rejected`] and the reject is counted in
    /// [`ServiceStats::rejected`].
    Reject,
}

impl QueueFullPolicy {
    /// Parses a policy name (`block` / `reject`, case-insensitive).
    pub fn parse(s: &str) -> Result<QueueFullPolicy, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "block" => Ok(QueueFullPolicy::Block),
            "reject" => Ok(QueueFullPolicy::Reject),
            other => Err(format!("unknown queue policy {other:?} (expected block or reject)")),
        }
    }
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Executor threads draining the queue (per shard, when sharded).
    pub executors: usize,
    /// Queue capacity; at this many pending requests the
    /// [`QueueFullPolicy`] decides between backpressure and shedding.
    pub queue_capacity: usize,
    /// What to do when the queue is full.
    pub queue_policy: QueueFullPolicy,
    /// Maximum execution attempts per request (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before retry `k` (1-based) is
    /// `min(backoff_base · 2^(k-1), backoff_cap)`, halved and then extended
    /// by deterministic jitter up to the same amount.
    pub backoff_base: Duration,
    /// Upper bound on a single backoff pause.
    pub backoff_cap: Duration,
    /// Seed of the retry-jitter stream (mixed with request id and attempt).
    pub seed: u64,
    /// Result-cache capacity in entries, per core (per shard when sharded).
    /// Zero disables caching entirely. Entries are scalar-sized, so the
    /// resident bound is a few hundred bytes per entry (see
    /// [`crate::cache::CacheStats::resident_bytes`]).
    pub cache_capacity: usize,
    /// Engine configuration for workload execution. Defaults to a single
    /// worker per executor — concurrency comes from running many requests
    /// at once, not from parallelizing each one. Its `partitioning` field
    /// doubles as the shard-placement strategy of the sharded service, so
    /// the `VCGP_PARTITIONING` override applies to both.
    pub engine: PregelConfig,
    /// Live-mutation settings. `None` (the default) keeps the service
    /// read-only: [`GraphService::submit_mutation`] fails with
    /// [`SubmitError::ReadOnly`], no writer thread is spawned, and queries
    /// always serve epoch 0.
    pub mutations: Option<MutationConfig>,
    /// Replica cores per shard (sharded service only; the single-instance
    /// service always runs one core). Each replica is a full
    /// queue-plus-executor-pool [`Core`] over the *same* epoch-pinned
    /// snapshot and shard slice, so replicating a hot shard costs queue
    /// state, not graph copies.
    pub replicas: usize,
    /// How the router picks a replica within a shard (sharded service
    /// only). See [`RoutingPolicy`].
    pub routing: RoutingPolicy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            executors: std::thread::available_parallelism()
                .map(|p| p.get().min(4))
                .unwrap_or(2),
            queue_capacity: 128,
            queue_policy: QueueFullPolicy::Block,
            max_attempts: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            seed: 0x5354_5253, // "STRS"
            cache_capacity: 256,
            engine: PregelConfig::single_worker(),
            mutations: None,
            replicas: 1,
            routing: RoutingPolicy::RoundRobin,
        }
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The service has been closed; no new work is admitted.
    Closed,
    /// The queue is at capacity (only from [`GraphService::try_submit`]).
    Full,
    /// A mutation was submitted to a service started without a
    /// [`MutationConfig`] — the graph is frozen.
    ReadOnly,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Closed => write!(f, "service closed"),
            SubmitError::Full => write!(f, "queue full"),
            SubmitError::ReadOnly => {
                write!(f, "service is read-only (no mutation stream configured)")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Cumulative service counters (monotone; read with [`GraphService::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with an error (includes rejects and early drops).
    pub failed: u64,
    /// Execution attempts beyond each request's first.
    pub retries: u64,
    /// Attempts that exceeded their per-attempt timeout.
    pub timeouts: u64,
    /// Panics contained by executors.
    pub panics: u64,
    /// Requests shed at submission under [`QueueFullPolicy::Reject`].
    pub rejected: u64,
    /// Requests dequeued with an already-expired deadline and answered
    /// without running (distinct from `timeouts`, which count attempts
    /// that ran too long).
    pub early_drops: u64,
    /// High-water mark of the queue depth (pending requests) since start —
    /// the occupancy gauge behind the stress report's per-shard column.
    pub queue_hwm: u64,
    /// Nanoseconds executors spent inside attempts (queueing and backoff
    /// excluded), summed across the core's executor threads — divided by
    /// `completed` this is the per-replica mean-service-latency column of
    /// the stress report.
    pub busy_ns: u64,
    /// Result-cache lookups answered without running the engine.
    pub cache_hits: u64,
    /// Result-cache lookups that found nothing (cacheable requests only).
    pub cache_misses: u64,
    /// Entries inserted into the result cache.
    pub cache_insertions: u64,
    /// Entries evicted from the result cache at capacity.
    pub cache_evictions: u64,
    /// Bytes currently resident in the result cache (a gauge, not a
    /// monotone counter; summed across cores by [`ServiceStats::absorb`]
    /// into the fleet-resident total).
    pub cache_bytes: u64,
}

impl ServiceStats {
    /// Folds another core's counters into this one (high-water marks take
    /// the maximum, everything else — including the resident-bytes gauge,
    /// which sums to the fleet total — adds).
    pub fn absorb(&mut self, other: &ServiceStats) {
        self.completed += other.completed;
        self.failed += other.failed;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.panics += other.panics;
        self.rejected += other.rejected;
        self.early_drops += other.early_drops;
        self.queue_hwm = self.queue_hwm.max(other.queue_hwm);
        self.busy_ns += other.busy_ns;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_insertions += other.cache_insertions;
        self.cache_evictions += other.cache_evictions;
        self.cache_bytes += other.cache_bytes;
    }

    /// The counters accumulated *since* `earlier` (monotone counters
    /// subtract; the gauges — queue high-water mark and cache resident
    /// bytes — keep their current value). Used by the driver to scope a
    /// report to one run when several runs share a service process.
    pub fn delta_since(&self, earlier: &ServiceStats) -> ServiceStats {
        ServiceStats {
            completed: self.completed - earlier.completed,
            failed: self.failed - earlier.failed,
            retries: self.retries - earlier.retries,
            timeouts: self.timeouts - earlier.timeouts,
            panics: self.panics - earlier.panics,
            rejected: self.rejected - earlier.rejected,
            early_drops: self.early_drops - earlier.early_drops,
            queue_hwm: self.queue_hwm,
            busy_ns: self.busy_ns - earlier.busy_ns,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            cache_insertions: self.cache_insertions - earlier.cache_insertions,
            cache_evictions: self.cache_evictions - earlier.cache_evictions,
            cache_bytes: self.cache_bytes,
        }
    }
}

/// One replica core's measured service times: the run-total histogram plus
/// the per-interval series, merged across the core's executor threads.
/// The two are recorded by the same call, so the series' slots fold
/// *exactly* to `service` — the identity `--validate-report` checks per
/// replica.
#[derive(Debug, Clone)]
pub struct ReplicaSeries {
    /// Every executed request's service time since the last reset.
    pub service: LogHistogram,
    /// The same samples bucketed by completion interval.
    pub intervals: IntervalSeries,
}

/// One executor thread's service-time recorder. Each executor owns its own
/// mutex-guarded log (uncontended except during driver resets/reads), so
/// recording never crosses threads on the hot path.
struct ServiceLog {
    /// The instant interval indices are measured from (a phase start).
    origin: Instant,
    total: LogHistogram,
    series: IntervalSeries,
}

impl ServiceLog {
    fn new() -> ServiceLog {
        ServiceLog {
            origin: Instant::now(),
            total: LogHistogram::new(),
            series: IntervalSeries::new(1_000_000_000),
        }
    }

    fn record(&mut self, service_time: Duration, ok: bool) {
        let at = Instant::now()
            .saturating_duration_since(self.origin)
            .as_nanos() as u64;
        let v = service_time.as_nanos() as u64;
        self.total.record(v);
        self.series.record(at, v, ok);
    }

    fn reset(&mut self, origin: Instant, interval_ns: u64) {
        self.origin = origin;
        self.total.clear();
        if self.series.interval_ns() == interval_ns {
            self.series.clear();
        } else {
            self.series = IntervalSeries::new(interval_ns);
        }
    }
}

/// One replica core's identity and counters within a shard. The cache
/// fields of `stats` are always zero here: the result cache is shared by
/// every replica of a shard (a hit on any replica serves the shard), so
/// its counters appear once at the shard level, never per replica.
#[derive(Debug, Clone, Copy)]
pub struct ReplicaSnapshot {
    /// Replica index within the shard.
    pub replica: usize,
    /// The replica core's counters.
    pub stats: ServiceStats,
}

/// One shard's identity and counters, as reported to the stress driver.
/// `stats` folds every replica core (sums; queue high-water marks take the
/// maximum) plus the shard-shared result cache's counters.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Shard index (0 for a single-instance service).
    pub shard: usize,
    /// Vertices this shard owns.
    pub owned: usize,
    /// The shard's counters, folded across replicas.
    pub stats: ServiceStats,
    /// Per-replica counters (one entry even when unreplicated).
    pub replicas: Vec<ReplicaSnapshot>,
}

/// Submit-side counter stripes appended after the per-executor slots, so
/// client threads bumping rejects/cache-hit counters do not contend with
/// executors (or each other, up to this many concurrent submitters).
const SUBMIT_STRIPES: usize = 8;

static NEXT_SUBMIT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each submitting thread claims one stripe on first use and keeps it.
    static SUBMIT_STRIPE: usize =
        NEXT_SUBMIT_STRIPE.fetch_add(1, Ordering::Relaxed) % SUBMIT_STRIPES;
}

/// One cache-line-padded stripe of the hot service counters. 128 bytes
/// covers the spatial-prefetcher pair of 64-byte lines on x86.
#[derive(Default)]
#[repr(align(128))]
struct CounterSlot {
    completed: AtomicU64,
    failed: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    panics: AtomicU64,
    rejected: AtomicU64,
    early_drops: AtomicU64,
    busy_ns: AtomicU64,
}

/// The hot counters, striped so executor threads never share a cache line:
/// executor `i` writes `slots[i]` exclusively, submit-side paths write one
/// of the trailing [`SUBMIT_STRIPES`] slots, and reads sum every stripe.
struct Counters {
    slots: Box<[CounterSlot]>,
}

impl Counters {
    fn new(executors: usize) -> Counters {
        Counters {
            slots: (0..executors + SUBMIT_STRIPES)
                .map(|_| CounterSlot::default())
                .collect(),
        }
    }

    /// The executor thread `i`'s private stripe.
    fn executor_slot(&self, i: usize) -> &CounterSlot {
        &self.slots[i]
    }

    /// The calling (submitting) thread's stripe.
    fn submit_slot(&self) -> &CounterSlot {
        let first = self.slots.len() - SUBMIT_STRIPES;
        &self.slots[first + SUBMIT_STRIPE.with(|s| *s)]
    }

    fn sum(&self, field: impl Fn(&CounterSlot) -> &AtomicU64) -> u64 {
        self.slots
            .iter()
            .map(|s| field(s).load(Ordering::Relaxed))
            .sum()
    }
}

struct Job {
    req: QueryRequest,
    enqueued_at: Instant,
    tx: mpsc::Sender<QueryResponse>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
    /// Deepest the queue has been (updated under the lock at enqueue).
    depth_hwm: usize,
}

struct Shared {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    counters: Counters,
    /// The core's result cache; `None` when caching is disabled. Shared
    /// (`Arc`) across every replica core of a shard, so keys stay
    /// replica-agnostic and a hit on any replica serves the shard.
    cache: Option<Arc<ResultCache>>,
    /// One service-time recorder per executor thread (executor `i` locks
    /// only `logs[i]`).
    logs: Box<[Mutex<ServiceLog>]>,
}

/// How an executor turns a dequeued request into an output. Implemented by
/// the full-graph backend below and by shard slices. Backends read the
/// request's pinned [`EpochSnapshot`] (stamped at submission), so a
/// request keeps serving its epoch even after the writer swaps in a newer
/// one.
pub(crate) trait ExecBackend: Send + Sync + 'static {
    fn execute(
        &self,
        req: &QueryRequest,
        engine: &PregelConfig,
    ) -> Result<QueryOutput, QueryError>;

    /// The result-cache identity of the request on this backend, or `None`
    /// for kinds that must not be memoized (point lookups, debug hooks).
    /// Derived from the request's pinned epoch, so lookup and insert agree
    /// on the fingerprint even when a swap lands mid-request. The default
    /// backend is uncacheable.
    fn cache_key(&self, req: &QueryRequest) -> Option<CacheKey> {
        let _ = req;
        None
    }
}

/// The memoizable payload of an output, if any (point-lookup and debug
/// payloads are never cached).
fn cacheable_output(output: &QueryOutput) -> Option<CachedAnswer> {
    match *output {
        QueryOutput::Workload { answer, supersteps, messages } => {
            Some(CachedAnswer::Whole { answer, supersteps, messages })
        }
        QueryOutput::WorkloadPartial { partial, supersteps, messages } => {
            Some(CachedAnswer::Leg { partial, supersteps, messages })
        }
        _ => None,
    }
}

/// Rehydrates a memoized answer into the response payload it was cached
/// from.
fn cached_output(value: CachedAnswer) -> QueryOutput {
    match value {
        CachedAnswer::Whole { answer, supersteps, messages } => {
            QueryOutput::Workload { answer, supersteps, messages }
        }
        CachedAnswer::Leg { partial, supersteps, messages } => {
            QueryOutput::WorkloadPartial { partial, supersteps, messages }
        }
    }
}

/// A pending response. Dropping the ticket abandons the response (the
/// executor's send is simply discarded); the request still runs.
pub struct Ticket {
    id: u64,
    rx: mpsc::Receiver<QueryResponse>,
}

impl Ticket {
    /// The submitted request's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the response arrives. If the service is torn down
    /// non-gracefully (executor channel dropped), returns a
    /// [`QueryError::ShuttingDown`] response rather than panicking.
    pub fn wait(self) -> QueryResponse {
        let id = self.id;
        self.rx
            .recv()
            .unwrap_or_else(|_| failure_response(id, QueryError::ShuttingDown))
    }
}

/// A zero-cost response for requests that never reached an executor.
fn failure_response(id: u64, error: QueryError) -> QueryResponse {
    QueryResponse {
        id,
        result: Err(error),
        attempts: 0,
        queue_wait: Duration::ZERO,
        service_time: Duration::ZERO,
        backoff: Duration::ZERO,
        route: Route::Direct,
        gather_wait: Duration::ZERO,
    }
}

/// One bounded queue + executor pool over an execution backend: the
/// reusable single-shard core shared by [`GraphService`] and every shard of
/// the sharded service.
pub(crate) struct Core {
    shared: Arc<Shared>,
    backend: Arc<dyn ExecBackend>,
    workers: Vec<JoinHandle<()>>,
    policy: QueueFullPolicy,
}

impl Core {
    /// Spawns the executor pool over `backend`. `cache` is the result
    /// cache this core consults and fills — pass the *same* [`Arc`] to
    /// every replica core of a shard so the cache is shard-scoped (build
    /// it with [`service_cache`]).
    pub(crate) fn start(
        backend: Arc<dyn ExecBackend>,
        config: &ServiceConfig,
        thread_label: &str,
        cache: Option<Arc<ResultCache>>,
    ) -> Core {
        assert!(config.executors >= 1, "need at least one executor");
        assert!(config.queue_capacity >= 1, "queue capacity must be positive");
        assert!(config.max_attempts >= 1, "need at least one attempt");
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
                depth_hwm: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: config.queue_capacity,
            counters: Counters::new(config.executors),
            cache,
            logs: (0..config.executors).map(|_| Mutex::new(ServiceLog::new())).collect(),
        });
        let workers = (0..config.executors)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let backend = Arc::clone(&backend);
                let config = config.clone();
                std::thread::Builder::new()
                    .name(format!("vcgp-stress-{thread_label}-{i}"))
                    .spawn(move || executor_loop(&*backend, &shared, &config, i))
                    .expect("spawn executor")
            })
            .collect();
        Core {
            shared,
            backend,
            workers,
            policy: config.queue_policy,
        }
    }

    /// Consults the result cache for `req`; a hit is answered immediately
    /// (counted as completed) without touching the queue. `None` means the
    /// request must execute: uncacheable kind, caching disabled, or a miss.
    fn cached_response(&self, req: &QueryRequest) -> Option<Ticket> {
        let cache = self.shared.cache.as_ref()?;
        let key = self.backend.cache_key(req)?;
        let value = cache.get(&key)?;
        self.shared
            .counters
            .submit_slot()
            .completed
            .fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        let _ = tx.send(QueryResponse {
            id: req.id,
            result: Ok(cached_output(value)),
            attempts: 0,
            queue_wait: Duration::ZERO,
            service_time: Duration::ZERO,
            backoff: Duration::ZERO,
            route: Route::Direct,
            gather_wait: Duration::ZERO,
        });
        Some(Ticket { id: req.id, rx })
    }

    /// Submits a request under the configured [`QueueFullPolicy`]: blocks
    /// while full (`Block`), or sheds with an immediate
    /// [`QueryError::Rejected`] response (`Reject`). A result-cache hit is
    /// answered without enqueueing (and is never shed — it costs no queue
    /// slot). Errs only when closed.
    pub(crate) fn submit(&self, req: QueryRequest) -> Result<Ticket, SubmitError> {
        let mut state = self.shared.state.lock().unwrap();
        if state.closed {
            return Err(SubmitError::Closed);
        }
        drop(state);
        if let Some(ticket) = self.cached_response(&req) {
            return Ok(ticket);
        }
        state = self.shared.state.lock().unwrap();
        loop {
            if state.closed {
                return Err(SubmitError::Closed);
            }
            if state.jobs.len() < self.shared.capacity {
                return Ok(self.enqueue(state, req));
            }
            match self.policy {
                QueueFullPolicy::Block => {
                    state = self.shared.not_full.wait(state).unwrap();
                }
                QueueFullPolicy::Reject => {
                    drop(state);
                    let slot = self.shared.counters.submit_slot();
                    slot.rejected.fetch_add(1, Ordering::Relaxed);
                    slot.failed.fetch_add(1, Ordering::Relaxed);
                    let (tx, rx) = mpsc::channel();
                    let _ = tx.send(failure_response(req.id, QueryError::Rejected));
                    return Ok(Ticket { id: req.id, rx });
                }
            }
        }
    }

    /// Non-blocking submit: fails immediately when the queue is full or the
    /// service is closed, regardless of policy (cache hits still answer —
    /// they need no queue slot).
    pub(crate) fn try_submit(&self, req: QueryRequest) -> Result<Ticket, SubmitError> {
        let state = self.shared.state.lock().unwrap();
        if state.closed {
            return Err(SubmitError::Closed);
        }
        drop(state);
        if let Some(ticket) = self.cached_response(&req) {
            return Ok(ticket);
        }
        let state = self.shared.state.lock().unwrap();
        if state.closed {
            return Err(SubmitError::Closed);
        }
        if state.jobs.len() >= self.shared.capacity {
            return Err(SubmitError::Full);
        }
        Ok(self.enqueue(state, req))
    }

    fn enqueue(
        &self,
        mut state: std::sync::MutexGuard<'_, QueueState>,
        req: QueryRequest,
    ) -> Ticket {
        let (tx, rx) = mpsc::channel();
        let id = req.id;
        state.jobs.push_back(Job {
            req,
            enqueued_at: Instant::now(),
            tx,
        });
        state.depth_hwm = state.depth_hwm.max(state.jobs.len());
        drop(state);
        self.shared.not_empty.notify_one();
        Ticket { id, rx }
    }

    pub(crate) fn close(&self) {
        let mut state = self.shared.state.lock().unwrap();
        state.closed = true;
        drop(state);
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
    }

    /// Blocks until the executors have drained every accepted request.
    /// Call [`Core::close`] first.
    pub(crate) fn join(&mut self) {
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// The core's counters, summed across stripes. The cache fields are
    /// always zero here: the result cache is shared across a shard's
    /// replicas, so its counters are overlaid once per shard (or per
    /// single-instance service) with [`overlay_cache`] — never per core,
    /// which would multiply them by the replica count.
    pub(crate) fn stats(&self) -> ServiceStats {
        let c = &self.shared.counters;
        let hwm = self.shared.state.lock().unwrap().depth_hwm;
        ServiceStats {
            completed: c.sum(|s| &s.completed),
            failed: c.sum(|s| &s.failed),
            retries: c.sum(|s| &s.retries),
            timeouts: c.sum(|s| &s.timeouts),
            panics: c.sum(|s| &s.panics),
            rejected: c.sum(|s| &s.rejected),
            early_drops: c.sum(|s| &s.early_drops),
            queue_hwm: hwm as u64,
            busy_ns: c.sum(|s| &s.busy_ns),
            ..ServiceStats::default()
        }
    }

    pub(crate) fn queue_depth(&self) -> usize {
        self.shared.state.lock().unwrap().jobs.len()
    }

    /// Resets every executor's service-time recorder to a fresh log whose
    /// intervals are measured from `origin` with the given width — how the
    /// driver scopes the per-replica series to one run (or phase).
    pub(crate) fn reset_service_log(&self, origin: Instant, interval_ns: u64) {
        for log in self.shared.logs.iter() {
            log.lock().unwrap().reset(origin, interval_ns);
        }
    }

    /// The core's service times since the last reset, merged across its
    /// executor threads (histogram merges are exact, so the fold identity
    /// between `service` and `intervals` survives the merge).
    pub(crate) fn service_series(&self) -> ReplicaSeries {
        let mut logs = self.shared.logs.iter();
        let first = logs.next().expect("core has at least one executor");
        let first = first.lock().unwrap();
        let mut out = ReplicaSeries {
            service: first.total.clone(),
            intervals: first.series.clone(),
        };
        drop(first);
        for log in logs {
            let log = log.lock().unwrap();
            out.service.merge(&log.total);
            out.intervals.merge(&log.series);
        }
        out
    }
}

/// Builds the result cache a [`Core`] (or a shard's set of replica cores)
/// will share; `None` when `cache_capacity` is zero.
pub(crate) fn service_cache(config: &ServiceConfig) -> Option<Arc<ResultCache>> {
    (config.cache_capacity > 0).then(|| Arc::new(ResultCache::new(config.cache_capacity)))
}

/// Copies a shared cache's counters into `stats`'s cache fields (see
/// [`Core::stats`] for why they live apart from the core counters).
pub(crate) fn overlay_cache(stats: &mut ServiceStats, cache: Option<&ResultCache>) {
    let c = cache.map(ResultCache::stats).unwrap_or_default();
    stats.cache_hits = c.hits;
    stats.cache_misses = c.misses;
    stats.cache_insertions = c.insertions;
    stats.cache_evictions = c.evictions;
    stats.cache_bytes = c.resident_bytes;
}

/// An owned handle to one result cache's invalidation hook, so the epoch
/// writer thread can fire it at each swap without holding a reference to
/// any core. One per shard — the cache is shared by the shard's replicas.
pub(crate) struct CacheInvalidator {
    cache: Option<Arc<ResultCache>>,
}

impl CacheInvalidator {
    pub(crate) fn new(cache: Option<Arc<ResultCache>>) -> CacheInvalidator {
        CacheInvalidator { cache }
    }

    pub(crate) fn invalidate(&self) {
        if let Some(cache) = &self.cache {
            cache.invalidate_all();
        }
    }
}

impl Drop for Core {
    fn drop(&mut self) {
        self.close();
        self.join();
    }
}

/// The full-resident-graph execution backend behind [`GraphService`]:
/// serves each request from its pinned epoch's graph.
struct FullGraphBackend {
    /// Epoch-0 fallback for requests without a pinned snapshot (none in
    /// practice: the service stamps every submission).
    base: Arc<EpochSnapshot>,
}

impl ExecBackend for FullGraphBackend {
    fn execute(
        &self,
        req: &QueryRequest,
        engine: &PregelConfig,
    ) -> Result<QueryOutput, QueryError> {
        let snap = req.epoch.as_ref().unwrap_or(&self.base);
        execute_on_full_graph(&snap.graph, &req.kind, req.seed, engine)
    }

    fn cache_key(&self, req: &QueryRequest) -> Option<CacheKey> {
        let snap = req.epoch.as_ref().unwrap_or(&self.base);
        workload_cache_key(&req.kind, req.seed, snap.fingerprint, snap.fingerprint)
    }
}

/// The epoch-rebuild backend of the single-instance service: apply the
/// batch to the full graph with the incremental CSR splice and refresh the
/// whole-answer fingerprint. No shard slices to maintain.
struct FullGraphRebuild {
    invalidator: CacheInvalidator,
}

impl EpochRebuild for FullGraphRebuild {
    fn rebuild(&self, base: &EpochSnapshot, batch: &[Mutation]) -> (EpochSnapshot, ApplyStats) {
        let (graph, delta) = apply_batch(&base.graph, batch);
        let graph = Arc::new(graph);
        let fingerprint = graph_fingerprint(&graph);
        (
            EpochSnapshot {
                id: base.id + 1,
                graph,
                fingerprint,
                locals: Vec::new(),
            },
            delta.stats,
        )
    }

    fn invalidate(&self) {
        self.invalidator.invalidate();
    }
}

/// The cache key of a workload request on a backend whose whole answers
/// are identified by `whole_fp` and whose scattered legs by `leg_fp`.
/// `None` for everything that must not be memoized (point lookups, debug
/// hooks). Shared with the shard backend.
pub(crate) fn workload_cache_key(
    kind: &QueryKind,
    seed: u64,
    whole_fp: u64,
    leg_fp: u64,
) -> Option<CacheKey> {
    match *kind {
        QueryKind::Workload(w) => Some(CacheKey {
            workload: w,
            scope: CacheScope::Whole,
            fingerprint: whole_fp,
            seed,
        }),
        QueryKind::WorkloadPartial(w) => Some(CacheKey {
            workload: w,
            scope: CacheScope::Leg,
            fingerprint: leg_fp,
            seed,
        }),
        _ => None,
    }
}

/// A resident graph serving typed queries from a bounded queue, with an
/// optional live-mutation stream installing epoch-versioned snapshots.
pub struct GraphService {
    graph: Arc<Graph>,
    core: Core,
    /// The core's result cache (held here too for stats overlay and
    /// invalidation; see [`Core::stats`]).
    cache: Option<Arc<ResultCache>>,
    epochs: Arc<EpochManager>,
    /// The epoch writer thread; `None` when the service is read-only.
    writer: Option<JoinHandle<()>>,
}

impl GraphService {
    /// Loads `graph` as epoch 0 (fingerprinting it once for the result
    /// cache) and spawns the executor pool — plus, when
    /// [`ServiceConfig::mutations`] is set, the epoch writer thread.
    pub fn start(graph: Arc<Graph>, config: ServiceConfig) -> GraphService {
        let epochs = Arc::new(EpochManager::new(
            EpochSnapshot {
                id: 0,
                graph: Arc::clone(&graph),
                fingerprint: graph_fingerprint(&graph),
                locals: Vec::new(),
            },
            config.mutations.as_ref(),
        ));
        let backend = Arc::new(FullGraphBackend {
            base: epochs.current(),
        });
        let cache = service_cache(&config);
        let core = Core::start(backend, &config, "exec", cache.clone());
        let writer = config.mutations.is_some().then(|| {
            spawn_writer(
                Arc::clone(&epochs),
                Box::new(FullGraphRebuild {
                    invalidator: CacheInvalidator::new(cache.clone()),
                }),
            )
        });
        GraphService {
            graph,
            core,
            cache,
            epochs,
            writer,
        }
    }

    /// The initially loaded (epoch 0) graph. Use [`GraphService::epoch`]
    /// for the currently serving version.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The currently serving epoch snapshot.
    pub fn epoch(&self) -> Arc<EpochSnapshot> {
        self.epochs.current()
    }

    /// Every epoch installed so far (including the initial one), when the
    /// service was started with [`MutationConfig::keep_history`]; `None`
    /// otherwise. Test instrumentation for checking answers against the
    /// full version history.
    pub fn epoch_history(&self) -> Option<Vec<Arc<EpochSnapshot>>> {
        self.epochs.history()
    }

    /// Submits a request, pinning it to the currently serving epoch.
    /// Under [`QueueFullPolicy::Block`] this blocks while the queue is
    /// full; under [`QueueFullPolicy::Reject`] a full queue yields a
    /// ticket that resolves immediately to [`QueryError::Rejected`]. Fails
    /// only when the service is closed.
    pub fn submit(&self, mut req: QueryRequest) -> Result<Ticket, SubmitError> {
        req.epoch = Some(self.epochs.current());
        self.core.submit(req)
    }

    /// Non-blocking submit: fails immediately when the queue is full or the
    /// service is closed.
    pub fn try_submit(&self, mut req: QueryRequest) -> Result<Ticket, SubmitError> {
        req.epoch = Some(self.epochs.current());
        self.core.try_submit(req)
    }

    /// Appends one mutation to the bounded write buffer (blocking while it
    /// is full), returning its accept sequence number. The writer thread
    /// applies buffered mutations in batches and installs each batch as
    /// the next epoch; queries submitted before the swap keep answering
    /// from their pinned epoch. Fails with [`SubmitError::ReadOnly`] when
    /// the service was started without [`ServiceConfig::mutations`].
    pub fn submit_mutation(&self, mutation: Mutation) -> Result<u64, SubmitError> {
        self.epochs.accept(mutation)
    }

    /// Writer-side counters (epoch id, swaps, accepted/applied/no-op
    /// mutations, backlog).
    pub fn writer_stats(&self) -> WriterStats {
        self.epochs.writer_stats()
    }

    /// Writer counters plus the freshness histograms (swap pause,
    /// write-apply latency, freshness lag).
    pub fn writer_report(&self) -> WriterReport {
        self.epochs.writer_report()
    }

    /// Snapshots the writer counters and resets the freshness histograms —
    /// the run-scoping baseline (see
    /// [`crate::epoch::EpochManager::writer_baseline`]).
    pub fn writer_baseline(&self) -> WriterStats {
        self.epochs.writer_baseline()
    }

    /// Stops admitting new requests and new mutations. Already-accepted
    /// requests keep their place and will be answered; buffered mutations
    /// are still applied; pending and future [`submit`] calls return
    /// [`SubmitError::Closed`].
    ///
    /// [`submit`]: GraphService::submit
    pub fn close(&self) {
        self.core.close();
        self.epochs.close();
    }

    /// Closes the service and blocks until the writer has applied every
    /// accepted mutation and the executors have drained every accepted
    /// request. Returns the final counters.
    pub fn shutdown(mut self) -> ServiceStats {
        self.epochs.close();
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
        self.core.close();
        self.core.join();
        self.stats()
    }

    /// A snapshot of the cumulative counters (cache counters included).
    pub fn stats(&self) -> ServiceStats {
        let mut stats = self.core.stats();
        overlay_cache(&mut stats, self.cache.as_deref());
        stats
    }

    /// The single-shard view of this service for the stress driver: one
    /// shard row (cache counters overlaid) carrying one replica row (raw
    /// core counters).
    pub(crate) fn shard_snapshot(&self) -> ShardSnapshot {
        let raw = self.core.stats();
        let mut stats = raw;
        overlay_cache(&mut stats, self.cache.as_deref());
        ShardSnapshot {
            shard: 0,
            owned: self.epoch().graph.num_vertices(),
            stats,
            replicas: vec![ReplicaSnapshot { replica: 0, stats: raw }],
        }
    }

    /// Resets the service-time recorders to measure from `origin` with the
    /// given interval width (see [`Core::reset_service_log`]).
    pub fn reset_service_log(&self, origin: Instant, interval_ns: u64) {
        self.core.reset_service_log(origin, interval_ns);
    }

    /// Per-shard, per-replica service-time series since the last reset —
    /// the single-instance service is one shard with one replica.
    pub fn replica_series(&self) -> Vec<Vec<ReplicaSeries>> {
        vec![vec![self.core.service_series()]]
    }

    /// Drops every result-cache entry. The invalidation hook that any
    /// future graph swap must fire before serving against the new graph
    /// (a no-op when caching is disabled).
    pub fn invalidate_cache(&self) {
        if let Some(cache) = &self.cache {
            cache.invalidate_all();
        }
    }

    /// Requests currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.core.queue_depth()
    }
}

impl Drop for GraphService {
    fn drop(&mut self) {
        // Stop and join the writer before the core's own Drop closes the
        // queues — a detached writer blocked on the write buffer would
        // leak its thread.
        self.epochs.close();
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}

fn executor_loop(backend: &dyn ExecBackend, shared: &Shared, config: &ServiceConfig, index: usize) {
    let slot = shared.counters.executor_slot(index);
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.closed {
                    return;
                }
                state = shared.not_empty.wait(state).unwrap();
            }
        };
        shared.not_full.notify_one();
        let response = serve(backend, shared, config, &job.req, job.enqueued_at, slot);
        shared.logs[index]
            .lock()
            .unwrap()
            .record(response.service_time, response.result.is_ok());
        if response.result.is_ok() {
            slot.completed.fetch_add(1, Ordering::Relaxed);
        } else {
            slot.failed.fetch_add(1, Ordering::Relaxed);
        }
        // The caller may have dropped its ticket; that is fine.
        let _ = job.tx.send(response);
    }
}

/// Runs one request to completion: attempt, post-hoc timeout check, backoff,
/// retry, deadline enforcement.
fn serve(
    backend: &dyn ExecBackend,
    shared: &Shared,
    config: &ServiceConfig,
    req: &QueryRequest,
    enqueued_at: Instant,
    slot: &CounterSlot,
) -> QueryResponse {
    let started = Instant::now();
    let queue_wait = started.duration_since(enqueued_at);
    let mut service_time = Duration::ZERO;
    let mut backoff_total = Duration::ZERO;
    let mut attempts = 0u32;
    let result = loop {
        if req.deadline.is_some_and(|d| Instant::now() >= d) {
            if attempts == 0 {
                // Dead on arrival: dropped without consuming an execution
                // slot — counted apart from timeouts, which ran and lost.
                slot.early_drops.fetch_add(1, Ordering::Relaxed);
            }
            break Err(QueryError::DeadlineExceeded);
        }
        attempts += 1;
        if attempts > 1 {
            slot.retries.fetch_add(1, Ordering::Relaxed);
        }
        let t0 = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            backend.execute(req, &config.engine)
        }));
        let elapsed = t0.elapsed();
        service_time += elapsed;
        match outcome {
            Err(payload) => {
                slot.panics.fetch_add(1, Ordering::Relaxed);
                break Err(QueryError::Panicked(panic_message(&*payload)));
            }
            Ok(Err(e)) => break Err(e), // permanent: retrying cannot help
            Ok(Ok(output)) => {
                // Memoize the computed answer even when this attempt blew
                // its timeout — the value is correct and deterministic, so
                // a later identical request (or this one's retry path, via
                // a fresh submit) gets it for free.
                if let Some(cache) = &shared.cache {
                    if let Some(key) = backend.cache_key(req) {
                        if let Some(value) = cacheable_output(&output) {
                            cache.insert(key, value);
                        }
                    }
                }
                if elapsed <= req.timeout {
                    break Ok(output);
                }
                slot.timeouts.fetch_add(1, Ordering::Relaxed);
                if attempts >= config.max_attempts {
                    break Err(QueryError::Timeout { attempts });
                }
                let pause = backoff_with_jitter(config, req.id, attempts);
                let pause = match req.deadline {
                    Some(d) => pause.min(d.saturating_duration_since(Instant::now())),
                    None => pause,
                };
                backoff_total += pause;
                std::thread::sleep(pause);
            }
        }
    };
    slot.busy_ns
        .fetch_add(service_time.as_nanos() as u64, Ordering::Relaxed);
    QueryResponse {
        id: req.id,
        result,
        attempts,
        queue_wait,
        service_time,
        backoff: backoff_total,
        route: Route::Direct,
        gather_wait: Duration::ZERO,
    }
}

/// Backoff before retry `attempt + 1`: exponential in the attempt number,
/// capped, then jittered deterministically into `[base/2, base)` so
/// simultaneous retries de-synchronize but a fixed seed reproduces exactly.
fn backoff_with_jitter(config: &ServiceConfig, req_id: u64, attempt: u32) -> Duration {
    let exp = config
        .backoff_base
        .saturating_mul(1u32 << (attempt - 1).min(16))
        .min(config.backoff_cap);
    let ns = exp.as_nanos() as u64;
    if ns < 2 {
        return exp;
    }
    let mut rng = SplitMix64::new(mix3(config.seed, req_id, u64::from(attempt)));
    Duration::from_nanos(ns / 2 + rng.next_below(ns / 2))
}

/// Executes one request kind against the full resident graph. Shared with
/// the sharded service's primary-shard fall-back path.
pub(crate) fn execute_on_full_graph(
    graph: &Graph,
    kind: &QueryKind,
    seed: u64,
    engine: &PregelConfig,
) -> Result<QueryOutput, QueryError> {
    match *kind {
        QueryKind::Workload(w) => {
            let run = vcgp_core::service::run_workload(w, graph, engine, seed)
                .map_err(|e| QueryError::Unsupported(e.to_string()))?;
            Ok(QueryOutput::Workload {
                answer: run.answer,
                supersteps: run.stats.supersteps(),
                messages: run.stats.total_messages(),
            })
        }
        QueryKind::WorkloadPartial(w) => {
            // A single-instance service owns the whole vertex set, so its
            // "partial" is the global reduction.
            let run = vcgp_core::service::run_workload_partial(w, graph, engine, seed, &|_| true)
                .map_err(|e| QueryError::Unsupported(e.to_string()))?;
            Ok(QueryOutput::WorkloadPartial {
                partial: run.partial,
                supersteps: run.stats.supersteps(),
                messages: run.stats.total_messages(),
            })
        }
        QueryKind::Degree(v) => {
            if (v as usize) >= graph.num_vertices() {
                return Err(QueryError::NoSuchVertex(v));
            }
            Ok(QueryOutput::Degree(graph.out_degree(v)))
        }
        QueryKind::Neighbors(v) => {
            if (v as usize) >= graph.num_vertices() {
                return Err(QueryError::NoSuchVertex(v));
            }
            Ok(QueryOutput::Neighbors(graph.out_neighbors(v).to_vec()))
        }
        QueryKind::DebugSleep(d) => {
            std::thread::sleep(d);
            Ok(QueryOutput::Slept)
        }
        QueryKind::DebugPanic => panic!("debug panic requested"),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
