//! Declarative load scenarios: phased, fully seeded workload specs.
//!
//! A scenario replaces the driver's hard-coded presets with a small
//! line-oriented spec: an ordered list of **phases** (warmup / measure /
//! cooldown — each with its own stopping criterion, target rate, client
//! count, and op mix) over an **op mix** of weighted operations whose
//! point-lookup keys come from per-op [`DistSpec`] distributions. Every
//! draw is a pure function of `(seed, index)` (see [`PhaseMix::op`]), so a
//! scenario + seed pair reproduces the identical operation stream — and
//! identical answers — for any client-thread count or interleaving.
//!
//! # Spec format
//!
//! Line-oriented; `#` starts a comment; indentation is ignored. Errors are
//! reported with their line number.
//!
//! ```text
//! scenario NAME            # required header
//! interval MS              # interval-log width (default 1000)
//! seed N                   # op-stream seed (default 7)
//! mutation-seed N          # write-stream seed (default 11)
//! timeout-ms N             # per-attempt timeout (default 5000)
//! rate R                   # global defaults a phase may override:
//! clients N                #   target ops/s, client threads, burst
//! burst N
//! op KIND WEIGHT [DIST] [span=SPAN]   # default mix (phases may override)
//!
//! phase NAME               # one or more phases, run in order
//!   duration SECS          # stop criteria: wall clock and/or op count
//!   ops N                  #   (at least one required)
//!   rate R                 # phase overrides of the globals
//!   clients N
//!   burst N
//!   seed N
//!   op KIND WEIGHT [DIST] [span=SPAN]
//! ```
//!
//! `KIND` is `point` (degree / neighbor lookups), `analytics` (the
//! serving-suitable workload pool), `scatter` (gather-mergeable workloads
//! only), a specific workload name (`pagerank`, `sssp`, …), or `mutate`
//! (one mutation from the seeded mutation stream). `DIST` and `span=` are
//! only valid on `point` ops: `DIST` is a [`DistSpec`] token (`uniform`,
//! `sequential`, `gaussian[:MEAN:STD]`, `zipfian:S`; default `uniform`)
//! and `SPAN` is `full`, a fraction like `1/8`, or an absolute id count
//! (default `full`).
//!
//! # Bit-identical preset desugaring
//!
//! [`PhaseMix::from_mix`] re-expresses a legacy [`Mix`] preset (plus
//! `--write-ratio`) as a one-phase scenario whose per-operation RNG
//! consumption replays [`Mix::op`] *exactly*: same stream constant, same
//! draw order, same write decision. The verify.sh desugar gate holds the
//! two paths to byte-identical reports.

use crate::dist::{DistSpec, KeySampler};
use crate::driver::DriverConfig;
use crate::mix::{serving_pool, Mix, MIX_STREAM};
use crate::request::QueryKind;
use std::time::Duration;
use vcgp_core::{service, Workload};
use vcgp_graph::rng::mix3;
use vcgp_graph::{Graph, SplitMix64};

/// Domain separator for the read-vs-write decision per stream index.
pub(crate) const WRITE_STREAM: u64 = 0x5752_4454; // "WRDT"

/// Every Table 1 workload, for spec-name resolution.
const ALL_WORKLOADS: [Workload; 20] = [
    Workload::Diameter,
    Workload::PageRank,
    Workload::CcHashMin,
    Workload::CcSv,
    Workload::Bcc,
    Workload::Wcc,
    Workload::Scc,
    Workload::EulerTour,
    Workload::TreeOrder,
    Workload::SpanningTree,
    Workload::Mst,
    Workload::Coloring,
    Workload::Matching,
    Workload::BipartiteMatching,
    Workload::Betweenness,
    Workload::Sssp,
    Workload::Apsp,
    Workload::GraphSim,
    Workload::DualSim,
    Workload::StrongSim,
];

/// Resolves a workload spec name (case-insensitive match of the variant
/// name, e.g. `pagerank`, `CcHashMin`).
pub fn parse_workload(token: &str) -> Option<Workload> {
    ALL_WORKLOADS
        .into_iter()
        .find(|w| format!("{w:?}").eq_ignore_ascii_case(token))
}

/// What one weighted op in a mix is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpClass {
    /// Degree / neighbor point lookups (key from the op's distribution).
    Point,
    /// One workload drawn uniformly from the serving-suitable pool.
    Analytics,
    /// Like `analytics`, restricted to gather-mergeable workloads (every
    /// draw scatters on a sharded service).
    Scatter,
    /// One specific workload.
    Workload(Workload),
    /// One mutation from the seeded mutation stream.
    Mutate,
}

impl OpClass {
    fn to_text(self) -> String {
        match self {
            OpClass::Point => "point".to_string(),
            OpClass::Analytics => "analytics".to_string(),
            OpClass::Scatter => "scatter".to_string(),
            OpClass::Workload(w) => format!("{w:?}").to_ascii_lowercase(),
            OpClass::Mutate => "mutate".to_string(),
        }
    }
}

/// The id span a point op draws keys from, relative to the graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpanSpec {
    /// The whole vertex-id space.
    Full,
    /// A low-id prefix: `max(1, n · num / den)` ids (the `hotspot` preset
    /// is `1/8`).
    Fraction(u64, u64),
    /// An absolute id count, clamped into `[1, n]`.
    Absolute(usize),
}

impl SpanSpec {
    fn parse(token: &str) -> Result<SpanSpec, String> {
        if token == "full" {
            return Ok(SpanSpec::Full);
        }
        if let Some((num, den)) = token.split_once('/') {
            let num: u64 = num.parse().map_err(|_| format!("invalid span fraction {token:?}"))?;
            let den: u64 = den.parse().map_err(|_| format!("invalid span fraction {token:?}"))?;
            if num == 0 || den == 0 {
                return Err(format!("span fraction must be positive, got {token:?}"));
            }
            return Ok(SpanSpec::Fraction(num, den));
        }
        let abs: usize = token
            .parse()
            .map_err(|_| format!("invalid span {token:?} (expected full, N/D, or a count)"))?;
        if abs == 0 {
            return Err("span count must be at least 1".to_string());
        }
        Ok(SpanSpec::Absolute(abs))
    }

    fn to_text(self) -> String {
        match self {
            SpanSpec::Full => "full".to_string(),
            SpanSpec::Fraction(n, d) => format!("{n}/{d}"),
            SpanSpec::Absolute(a) => format!("{a}"),
        }
    }

    /// The concrete span on a graph with `n` vertices.
    pub fn resolve(self, n: usize) -> usize {
        match self {
            SpanSpec::Full => n.max(1),
            SpanSpec::Fraction(num, den) => {
                ((n as u64).saturating_mul(num) / den).max(1) as usize
            }
            SpanSpec::Absolute(a) => a.clamp(1, n.max(1)),
        }
    }
}

/// One weighted operation in a mix, as parsed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpSpec {
    /// What the op does.
    pub kind: OpClass,
    /// Relative weight (probability mass `weight / Σ weights`).
    pub weight: u64,
    /// Key distribution (point ops only).
    pub dist: DistSpec,
    /// Key span (point ops only).
    pub span: SpanSpec,
}

/// One phase, as parsed. `None` fields inherit the scenario's globals (or
/// the built-in defaults) at resolution.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhaseSpec {
    /// Phase name (reported per phase).
    pub name: String,
    /// Wall-clock stop criterion, seconds.
    pub duration: Option<f64>,
    /// Op-count stop criterion.
    pub ops: Option<u64>,
    /// Target rate override.
    pub rate: Option<f64>,
    /// Burst override.
    pub burst: Option<u32>,
    /// Client-thread override.
    pub clients: Option<usize>,
    /// Op-stream seed override (default: scenario seed + phase index).
    pub seed: Option<u64>,
    /// The phase's own mix; empty = inherit the scenario's default ops.
    pub ops_mix: Vec<OpSpec>,
}

/// A parsed scenario spec (see the module docs for the format). All
/// optional fields are `None` when the spec omitted them, so a caller (the
/// stress binary) can layer CLI defaults underneath before resolving.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScenarioSpec {
    /// Scenario name (the report's `scenario` field).
    pub name: String,
    /// Interval-log width in milliseconds.
    pub interval_ms: Option<u64>,
    /// Op-stream base seed.
    pub seed: Option<u64>,
    /// Mutation-stream base seed.
    pub mutation_seed: Option<u64>,
    /// Per-attempt timeout in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Global target rate (ops/s).
    pub rate: Option<f64>,
    /// Global burst allowance.
    pub burst: Option<u32>,
    /// Global client-thread count.
    pub clients: Option<usize>,
    /// Default mix for phases without their own `op` lines.
    pub default_ops: Vec<OpSpec>,
    /// The phases, in run order.
    pub phases: Vec<PhaseSpec>,
}

/// Formats a float so `parse` round-trips it (`1` not `1.0` is fine — both
/// re-parse to the same value).
fn num(v: f64) -> String {
    format!("{v}")
}

impl ScenarioSpec {
    /// Parses a spec document, reporting malformed lines as
    /// `line N: <problem>`.
    pub fn parse(text: &str) -> Result<ScenarioSpec, String> {
        let mut spec = ScenarioSpec::default();
        let mut saw_header = false;
        let mut in_phase = false;
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let err = |msg: String| format!("line {line_no}: {msg}");
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let tokens: Vec<&str> = line.split_whitespace().collect();
            let keyword = tokens[0];
            let arg = |what: &str| -> Result<&str, String> {
                if tokens.len() != 2 {
                    return Err(err(format!("'{keyword}' takes exactly one {what}")));
                }
                Ok(tokens[1])
            };
            match keyword {
                "scenario" => {
                    if saw_header {
                        return Err(err("duplicate 'scenario' header".to_string()));
                    }
                    saw_header = true;
                    spec.name = arg("name")?.to_string();
                }
                "phase" => {
                    in_phase = true;
                    spec.phases.push(PhaseSpec {
                        name: arg("name")?.to_string(),
                        ..PhaseSpec::default()
                    });
                }
                "interval" => {
                    let ms: u64 = parse_num(arg("value")?, "interval", &err)?;
                    if ms == 0 {
                        return Err(err("interval must be at least 1 ms".to_string()));
                    }
                    set_once(&mut spec.interval_ms, ms, "interval", &err)?;
                }
                "seed" => {
                    let v = parse_num(arg("value")?, "seed", &err)?;
                    match spec.phases.last_mut() {
                        Some(p) => set_once(&mut p.seed, v, "seed", &err)?,
                        None => set_once(&mut spec.seed, v, "seed", &err)?,
                    }
                }
                "mutation-seed" => {
                    if in_phase {
                        return Err(err(
                            "'mutation-seed' is scenario-global (set it before any phase)"
                                .to_string(),
                        ));
                    }
                    let v = parse_num(arg("value")?, "mutation-seed", &err)?;
                    set_once(&mut spec.mutation_seed, v, "mutation-seed", &err)?;
                }
                "timeout-ms" => {
                    if in_phase {
                        return Err(err(
                            "'timeout-ms' is scenario-global (set it before any phase)".to_string(),
                        ));
                    }
                    let v: u64 = parse_num(arg("value")?, "timeout-ms", &err)?;
                    if v == 0 {
                        return Err(err("timeout must be at least 1 ms".to_string()));
                    }
                    set_once(&mut spec.timeout_ms, v, "timeout-ms", &err)?;
                }
                "rate" => {
                    let v: f64 = parse_num(arg("value")?, "rate", &err)?;
                    if !(v > 0.0 && v.is_finite()) {
                        return Err(err(format!("rate must be positive and finite, got {v}")));
                    }
                    match spec.phases.last_mut() {
                        Some(p) => set_once(&mut p.rate, v, "rate", &err)?,
                        None => set_once(&mut spec.rate, v, "rate", &err)?,
                    }
                }
                "burst" => {
                    let v: u32 = parse_num(arg("value")?, "burst", &err)?;
                    if v == 0 {
                        return Err(err("burst must be at least 1".to_string()));
                    }
                    match spec.phases.last_mut() {
                        Some(p) => set_once(&mut p.burst, v, "burst", &err)?,
                        None => set_once(&mut spec.burst, v, "burst", &err)?,
                    }
                }
                "clients" => {
                    let v: usize = parse_num(arg("value")?, "clients", &err)?;
                    if v == 0 {
                        return Err(err("clients must be at least 1".to_string()));
                    }
                    match spec.phases.last_mut() {
                        Some(p) => set_once(&mut p.clients, v, "clients", &err)?,
                        None => set_once(&mut spec.clients, v, "clients", &err)?,
                    }
                }
                "duration" => {
                    let v: f64 = parse_num(arg("value")?, "duration", &err)?;
                    if !(v > 0.0 && v.is_finite()) {
                        return Err(err(format!(
                            "duration must be positive and finite, got {v}"
                        )));
                    }
                    match spec.phases.last_mut() {
                        Some(p) => set_once(&mut p.duration, v, "duration", &err)?,
                        None => return Err(err("'duration' belongs inside a phase".to_string())),
                    }
                }
                "ops" => {
                    let v: u64 = parse_num(arg("value")?, "ops", &err)?;
                    if v == 0 {
                        return Err(err("ops must be at least 1".to_string()));
                    }
                    match spec.phases.last_mut() {
                        Some(p) => set_once(&mut p.ops, v, "ops", &err)?,
                        None => return Err(err("'ops' belongs inside a phase".to_string())),
                    }
                }
                "op" => {
                    let op = parse_op(&tokens[1..]).map_err(&err)?;
                    match spec.phases.last_mut() {
                        Some(p) => p.ops_mix.push(op),
                        None => spec.default_ops.push(op),
                    }
                }
                other => {
                    return Err(err(format!(
                        "unknown keyword {other:?} (expected scenario, interval, seed, \
                         mutation-seed, timeout-ms, rate, burst, clients, op, phase, \
                         duration, or ops)"
                    )))
                }
            }
        }
        if !saw_header {
            return Err("missing 'scenario NAME' header".to_string());
        }
        if spec.phases.is_empty() {
            return Err("scenario declares no phases".to_string());
        }
        for (i, p) in spec.phases.iter().enumerate() {
            if p.duration.is_none() && p.ops.is_none() {
                return Err(format!(
                    "phase {:?} (#{}) has no stop criterion (set duration and/or ops)",
                    p.name,
                    i + 1
                ));
            }
            if p.ops_mix.is_empty() && spec.default_ops.is_empty() {
                return Err(format!(
                    "phase {:?} (#{}) has no op mix and the scenario declares no default ops",
                    p.name,
                    i + 1
                ));
            }
        }
        Ok(spec)
    }

    /// The canonical spec text; `parse(to_text())` reproduces the spec
    /// exactly (the round-trip property the tests enforce).
    pub fn to_text(&self) -> String {
        let mut out = format!("scenario {}\n", self.name);
        for (key, v) in [
            ("interval", self.interval_ms.map(|v| v.to_string())),
            ("seed", self.seed.map(|v| v.to_string())),
            ("mutation-seed", self.mutation_seed.map(|v| v.to_string())),
            ("timeout-ms", self.timeout_ms.map(|v| v.to_string())),
            ("rate", self.rate.map(num)),
            ("burst", self.burst.map(|v| v.to_string())),
            ("clients", self.clients.map(|v| v.to_string())),
        ] {
            if let Some(v) = v {
                out.push_str(&format!("{key} {v}\n"));
            }
        }
        for op in &self.default_ops {
            out.push_str(&op_text(op));
        }
        for p in &self.phases {
            out.push_str(&format!("\nphase {}\n", p.name));
            if let Some(v) = p.duration {
                out.push_str(&format!("  duration {}\n", num(v)));
            }
            if let Some(v) = p.ops {
                out.push_str(&format!("  ops {v}\n"));
            }
            if let Some(v) = p.rate {
                out.push_str(&format!("  rate {}\n", num(v)));
            }
            if let Some(v) = p.burst {
                out.push_str(&format!("  burst {v}\n"));
            }
            if let Some(v) = p.clients {
                out.push_str(&format!("  clients {v}\n"));
            }
            if let Some(v) = p.seed {
                out.push_str(&format!("  seed {v}\n"));
            }
            for op in &p.ops_mix {
                out.push_str(&format!("  {}", op_text(op)));
            }
        }
        out
    }

    /// Resolves the spec against a graph into a runnable [`Scenario`]:
    /// defaults filled, phase mixes compiled, workload pools validated.
    pub fn resolve(&self, graph: &Graph) -> Result<Scenario, String> {
        let base_seed = self.seed.unwrap_or(7);
        let base_mutation_seed = self.mutation_seed.unwrap_or(11);
        let phases = self
            .phases
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let ops = if p.ops_mix.is_empty() { &self.default_ops } else { &p.ops_mix };
                let mix = PhaseMix::from_specs(ops, graph)
                    .map_err(|e| format!("phase {:?}: {e}", p.name))?;
                Ok(Phase {
                    name: p.name.clone(),
                    duration: p.duration.map(Duration::from_secs_f64),
                    ops_limit: p.ops,
                    rate: p.rate.or(self.rate),
                    burst: p.burst.or(self.burst).unwrap_or(1),
                    clients: p.clients.or(self.clients).unwrap_or(4),
                    // Phase i defaults to base seed + i so phases draw
                    // distinct streams; phase 0 keeps the base seed itself,
                    // which is what makes one-phase desugarings of the
                    // legacy presets bit-identical.
                    seed: p.seed.unwrap_or(base_seed.wrapping_add(i as u64)),
                    mutation_seed: base_mutation_seed.wrapping_add(i as u64),
                    mix,
                })
            })
            .collect::<Result<Vec<Phase>, String>>()?;
        Ok(Scenario {
            name: self.name.clone(),
            interval: Duration::from_millis(self.interval_ms.unwrap_or(1000)),
            seed: base_seed,
            timeout: Duration::from_millis(self.timeout_ms.unwrap_or(5000)),
            phases,
        })
    }
}

fn parse_num<T: std::str::FromStr>(
    s: &str,
    what: &str,
    err: &impl Fn(String) -> String,
) -> Result<T, String> {
    s.parse().map_err(|_| err(format!("invalid {what} value {s:?}")))
}

fn set_once<T>(
    slot: &mut Option<T>,
    value: T,
    what: &str,
    err: &impl Fn(String) -> String,
) -> Result<(), String> {
    if slot.is_some() {
        return Err(err(format!("duplicate '{what}'")));
    }
    *slot = Some(value);
    Ok(())
}

/// Parses the tokens after `op`: `KIND WEIGHT [DIST] [span=SPAN]`.
fn parse_op(tokens: &[&str]) -> Result<OpSpec, String> {
    if tokens.len() < 2 {
        return Err("'op' needs a kind and a weight".to_string());
    }
    let kind = match tokens[0] {
        "point" => OpClass::Point,
        "analytics" => OpClass::Analytics,
        "scatter" => OpClass::Scatter,
        "mutate" => OpClass::Mutate,
        name => OpClass::Workload(parse_workload(name).ok_or_else(|| {
            format!(
                "unknown op kind {name:?} (expected point, analytics, scatter, mutate, \
                 or a workload name)"
            )
        })?),
    };
    let weight: u64 = tokens[1]
        .parse()
        .map_err(|_| format!("invalid op weight {:?}", tokens[1]))?;
    if weight == 0 {
        return Err("op weight must be at least 1".to_string());
    }
    let mut dist = None;
    let mut span = None;
    for &t in &tokens[2..] {
        if let Some(spec) = t.strip_prefix("span=") {
            if span.is_some() {
                return Err(format!("duplicate span on op {:?}", tokens[0]));
            }
            span = Some(SpanSpec::parse(spec)?);
        } else {
            if dist.is_some() {
                return Err(format!("duplicate distribution on op {:?}", tokens[0]));
            }
            dist = Some(DistSpec::parse(t)?);
        }
    }
    if kind != OpClass::Point && (dist.is_some() || span.is_some()) {
        return Err(format!(
            "op {:?} takes no distribution or span (only 'point' draws keys)",
            tokens[0]
        ));
    }
    Ok(OpSpec {
        kind,
        weight,
        dist: dist.unwrap_or(DistSpec::Uniform),
        span: span.unwrap_or(SpanSpec::Full),
    })
}

fn op_text(op: &OpSpec) -> String {
    match op.kind {
        OpClass::Point => format!(
            "op point {} {} span={}\n",
            op.weight,
            op.dist.to_text(),
            op.span.to_text()
        ),
        kind => format!("op {} {}\n", kind.to_text(), op.weight),
    }
}

/// A resolved, runnable scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (the report's `scenario` field).
    pub name: String,
    /// Interval-log width.
    pub interval: Duration,
    /// Base op-stream seed (reported; phases carry their own).
    pub seed: u64,
    /// Per-attempt timeout stamped on every request.
    pub timeout: Duration,
    /// The phases, in run order.
    pub phases: Vec<Phase>,
}

impl Scenario {
    /// The one-phase scenario a legacy preset run desugars to: same mix,
    /// same seeds, same pacing — [`crate::driver::run`] routes through this,
    /// so the legacy CLI surface *is* a scenario and stays bit-identical to
    /// its pre-scenario behavior.
    pub fn from_legacy(mix: &Mix, cfg: &DriverConfig) -> Scenario {
        Scenario {
            name: mix.name().to_string(),
            interval: cfg.interval,
            seed: cfg.seed,
            timeout: cfg.timeout,
            phases: vec![Phase {
                name: "main".to_string(),
                duration: Some(cfg.duration),
                ops_limit: cfg.ops_limit,
                rate: cfg.rate,
                burst: cfg.burst,
                clients: cfg.clients,
                seed: cfg.seed,
                mutation_seed: cfg.mutation_seed,
                mix: PhaseMix::from_mix(mix, cfg.write_ratio),
            }],
        }
    }

    /// True when any phase can issue mutations (the service needs a
    /// [`crate::epoch::MutationConfig`] then).
    pub fn has_writes(&self) -> bool {
        self.phases.iter().any(|p| p.mix.write_ppm() > 0)
    }
}

/// One resolved phase.
#[derive(Debug, Clone)]
pub struct Phase {
    /// Phase name (reported per phase).
    pub name: String,
    /// Wall-clock stop criterion.
    pub duration: Option<Duration>,
    /// Op-count stop criterion.
    pub ops_limit: Option<u64>,
    /// Target rate (`None` = unthrottled).
    pub rate: Option<f64>,
    /// Token-bucket burst allowance.
    pub burst: u32,
    /// Client threads.
    pub clients: usize,
    /// Op-stream seed.
    pub seed: u64,
    /// Mutation-stream seed (write decision + mutation draw).
    pub mutation_seed: u64,
    /// The compiled op mix.
    pub mix: PhaseMix,
}

enum MixAction {
    /// A point lookup; the key comes from the sampler, then one bool draw
    /// picks degree vs neighbors.
    Point(KeySampler),
    /// One workload drawn uniformly from a pool.
    Pool(Vec<Workload>),
    /// One fixed workload (no further RNG consumption).
    Fixed(Workload),
}

struct MixEntry {
    /// Exclusive cumulative-weight upper bound: the entry serves rolls in
    /// `[previous cum, cum)`.
    cum: u64,
    action: MixAction,
}

/// A compiled op mix: weighted entries over a cumulative-weight roll, plus
/// the write probability in parts per million. [`PhaseMix::op`] is a pure
/// function of `(seed, index)` exactly like [`Mix::op`] — one fresh
/// [`SplitMix64`] per operation, consumed in a fixed draw order.
pub struct PhaseMix {
    /// Sum of non-mutate weights (the roll modulus).
    total: u64,
    /// Probability a stream index is a write, in parts per million.
    write_ppm: u64,
    entries: Vec<MixEntry>,
}

impl std::fmt::Debug for PhaseMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhaseMix")
            .field("total", &self.total)
            .field("write_ppm", &self.write_ppm)
            .field("entries", &self.entries.len())
            .finish()
    }
}

impl Clone for PhaseMix {
    fn clone(&self) -> PhaseMix {
        PhaseMix {
            total: self.total,
            write_ppm: self.write_ppm,
            entries: self
                .entries
                .iter()
                .map(|e| MixEntry {
                    cum: e.cum,
                    action: match &e.action {
                        MixAction::Point(s) => MixAction::Point(*s),
                        MixAction::Pool(p) => MixAction::Pool(p.clone()),
                        MixAction::Fixed(w) => MixAction::Fixed(*w),
                    },
                })
                .collect(),
        }
    }
}

impl PhaseMix {
    /// Compiles parsed op specs against a graph. Fails when a pool is
    /// empty on this graph, a named workload is unsupported, or the mix
    /// has no servable mass (all-mutate mixes are allowed — every index is
    /// a write then).
    pub fn from_specs(ops: &[OpSpec], graph: &Graph) -> Result<PhaseMix, String> {
        let total_all: u64 = ops.iter().map(|o| o.weight).sum();
        let mutate: u64 = ops
            .iter()
            .filter(|o| o.kind == OpClass::Mutate)
            .map(|o| o.weight)
            .sum();
        let total = total_all - mutate;
        let write_ppm = if mutate == 0 { 0 } else { mutate * 1_000_000 / total_all };
        if total == 0 && write_ppm < 1_000_000 {
            return Err("op mix has no read operations".to_string());
        }
        let n = graph.num_vertices();
        let mut entries = Vec::new();
        let mut cum = 0u64;
        for op in ops {
            if op.kind == OpClass::Mutate {
                continue;
            }
            cum += op.weight;
            let action = match op.kind {
                OpClass::Point => MixAction::Point(op.dist.sampler(op.span.resolve(n))),
                OpClass::Analytics => {
                    let pool = serving_pool(graph, false);
                    if pool.is_empty() {
                        return Err(
                            "'analytics' op: this graph supports no serving workloads".to_string()
                        );
                    }
                    MixAction::Pool(pool)
                }
                OpClass::Scatter => {
                    let pool = serving_pool(graph, true);
                    if pool.is_empty() {
                        return Err(
                            "'scatter' op: this graph supports no gather-mergeable workloads"
                                .to_string(),
                        );
                    }
                    MixAction::Pool(pool)
                }
                OpClass::Workload(w) => {
                    service::supported(w, graph)
                        .map_err(|e| format!("op {:?}: {e}", op.kind.to_text()))?;
                    MixAction::Fixed(w)
                }
                OpClass::Mutate => unreachable!(),
            };
            entries.push(MixEntry { cum, action });
        }
        Ok(PhaseMix { total, write_ppm, entries })
    }

    /// The desugaring of a legacy [`Mix`] preset plus `--write-ratio`:
    /// reproduces [`Mix::op`]'s RNG consumption draw for draw (total 100,
    /// point entry first, pool second), so the resulting op stream is
    /// byte-identical to the preset's.
    pub fn from_mix(mix: &Mix, write_ratio: f64) -> PhaseMix {
        let mut entries = Vec::new();
        let point_pct = mix.point_pct();
        if point_pct > 0 {
            let dist = match mix.zipf() {
                Some(z) => DistSpec::Zipfian(z.exponent()),
                None => DistSpec::Uniform,
            };
            entries.push(MixEntry {
                cum: point_pct,
                action: MixAction::Point(dist.sampler(mix.vertex_span())),
            });
        }
        if point_pct < 100 {
            entries.push(MixEntry {
                cum: 100,
                action: MixAction::Pool(mix.workloads().to_vec()),
            });
        }
        PhaseMix {
            total: 100,
            // The exact expression of the legacy driver's write gate.
            write_ppm: (write_ratio * 1e6) as u64,
            entries,
        }
    }

    /// Probability a stream index is a write, in parts per million.
    pub fn write_ppm(&self) -> u64 {
        self.write_ppm
    }

    /// True when stream index `index` issues a mutation instead of a read
    /// — a pure function of `(mutation_seed, index)` that consumes nothing
    /// from the op RNG, so the read stream under `write_ppm = 0` is
    /// bit-identical to a mix with no write path at all.
    pub fn is_write(&self, mutation_seed: u64, index: u64) -> bool {
        self.write_ppm > 0
            && mix3(mutation_seed, index, WRITE_STREAM) % 1_000_000 < self.write_ppm
    }

    /// The read operation at `index` in the stream seeded by `seed` — a
    /// pure function of its arguments (same construction as [`Mix::op`]).
    /// Only meaningful for indices where [`PhaseMix::is_write`] is false.
    pub fn op(&self, seed: u64, index: u64) -> QueryKind {
        assert!(self.total > 0, "an all-mutate mix has no read operations");
        let mut rng = SplitMix64::new(mix3(seed, index, MIX_STREAM));
        let roll = rng.next_below(self.total);
        for entry in &self.entries {
            if roll < entry.cum {
                return match &entry.action {
                    MixAction::Point(sampler) => {
                        let v = sampler.sample(index, &mut rng);
                        if rng.next_bool(0.5) {
                            QueryKind::Degree(v)
                        } else {
                            QueryKind::Neighbors(v)
                        }
                    }
                    MixAction::Pool(pool) => {
                        QueryKind::Workload(pool[rng.next_index(pool.len())])
                    }
                    MixAction::Fixed(w) => QueryKind::Workload(*w),
                };
            }
        }
        unreachable!("roll below total always lands in an entry")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;

    const SPEC: &str = "\
# A two-phase scenario exercising most of the grammar.
scenario demo
interval 500
seed 21
mutation-seed 13
timeout-ms 2000
clients 2
op point 80 zipfian:1.1 span=1/8
op analytics 20

phase warmup
  duration 0.5
  rate 200

phase measure
  ops 400
  clients 4
  seed 99
  op point 70 gaussian span=full
  op sssp 20
  op mutate 10
";

    fn graph() -> Graph {
        generators::gnm_connected(64, 160, 5)
    }

    #[test]
    fn parse_reads_the_whole_grammar() {
        let spec = ScenarioSpec::parse(SPEC).unwrap();
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.interval_ms, Some(500));
        assert_eq!(spec.seed, Some(21));
        assert_eq!(spec.mutation_seed, Some(13));
        assert_eq!(spec.clients, Some(2));
        assert_eq!(spec.default_ops.len(), 2);
        assert_eq!(spec.phases.len(), 2);
        assert_eq!(spec.phases[0].rate, Some(200.0));
        assert!(spec.phases[0].ops_mix.is_empty());
        assert_eq!(spec.phases[1].ops, Some(400));
        assert_eq!(spec.phases[1].ops_mix.len(), 3);
        assert_eq!(spec.phases[1].ops_mix[1].kind, OpClass::Workload(Workload::Sssp));
        assert_eq!(spec.phases[1].ops_mix[2].kind, OpClass::Mutate);
    }

    #[test]
    fn to_text_round_trips() {
        let spec = ScenarioSpec::parse(SPEC).unwrap();
        let reparsed = ScenarioSpec::parse(&spec.to_text()).unwrap();
        assert_eq!(spec, reparsed);
    }

    #[test]
    fn malformed_specs_fail_with_line_numbers() {
        for (text, line, needle) in [
            ("interval 5\nphase p\n ops 1\n op point 1\n", 0, "missing 'scenario"),
            ("scenario s\nbogus 1\n", 2, "unknown keyword"),
            ("scenario s\nphase p\nduration 0\n", 3, "positive"),
            ("scenario s\nop point 0\n", 2, "weight"),
            ("scenario s\nop mutate 5 uniform\nphase p\nops 1\n", 2, "no distribution"),
            ("scenario s\nop point 1 zipfian:0\n", 2, "zipfian"),
            ("scenario s\nop nosuch 1\n", 2, "unknown op kind"),
            ("scenario s\nseed 1\nseed 2\n", 3, "duplicate"),
            ("scenario s\nphase p\nop point 1\n", 0, "no stop criterion"),
            ("scenario s\nphase p\nops 5\n", 0, "no op mix"),
        ] {
            let e = ScenarioSpec::parse(text).unwrap_err();
            if line > 0 {
                assert!(e.starts_with(&format!("line {line}:")), "{text:?} -> {e}");
            }
            assert!(e.contains(needle), "{text:?} -> {e}");
        }
    }

    #[test]
    fn resolve_fills_defaults_and_offsets_phase_seeds() {
        let g = graph();
        let sc = ScenarioSpec::parse(SPEC).unwrap().resolve(&g).unwrap();
        assert_eq!(sc.phases.len(), 2);
        assert_eq!(sc.interval, Duration::from_millis(500));
        // Phase 0 inherits the defaults: base seed, global clients/rate.
        assert_eq!(sc.phases[0].seed, 21);
        assert_eq!(sc.phases[0].mutation_seed, 13);
        assert_eq!(sc.phases[0].clients, 2);
        assert_eq!(sc.phases[0].rate, Some(200.0));
        // Phase 1 overrides seed and clients; inherits no rate.
        assert_eq!(sc.phases[1].seed, 99);
        assert_eq!(sc.phases[1].mutation_seed, 14);
        assert_eq!(sc.phases[1].clients, 4);
        assert_eq!(sc.phases[1].rate, None);
        assert!(sc.has_writes());
        assert_eq!(sc.phases[1].mix.write_ppm(), 100_000);
    }

    #[test]
    fn phase_mix_ops_are_pure_and_match_their_weights() {
        let g = graph();
        let sc = ScenarioSpec::parse(SPEC).unwrap().resolve(&g).unwrap();
        let mix = &sc.phases[1].mix;
        let mut points = 0;
        for i in 0..600u64 {
            let op = mix.op(5, i);
            assert_eq!(op, mix.op(5, i), "index {i}");
            match op {
                QueryKind::Degree(v) | QueryKind::Neighbors(v) => {
                    points += 1;
                    assert!((v as usize) < g.num_vertices());
                }
                QueryKind::Workload(w) => assert_eq!(w, Workload::Sssp),
                other => panic!("unexpected op {other:?}"),
            }
        }
        // point weight 70 of 90 read mass ≈ 78%.
        assert!((400..=530).contains(&points), "{points} points of 600");
    }

    #[test]
    fn from_mix_replays_the_legacy_preset_exactly() {
        let g = graph();
        for preset in ["points", "mixed", "analytics", "hotspot"] {
            let legacy = Mix::preset(preset, &g).unwrap();
            let desugared = PhaseMix::from_mix(&legacy, 0.0);
            for i in 0..400u64 {
                assert_eq!(legacy.op(7, i), desugared.op(7, i), "{preset} index {i}");
            }
        }
        // And with a zipfian key draw layered on.
        let legacy = Mix::preset("hotspot", &g).unwrap().with_zipf(1.2).unwrap();
        let desugared = PhaseMix::from_mix(&legacy, 0.0);
        for i in 0..400u64 {
            assert_eq!(legacy.op(7, i), desugared.op(7, i), "zipf index {i}");
        }
    }

    #[test]
    fn write_decision_matches_the_legacy_gate() {
        let g = graph();
        let legacy = Mix::preset("mixed", &g).unwrap();
        let ratio = 0.1f64;
        let desugared = PhaseMix::from_mix(&legacy, ratio);
        let mut writes = 0;
        for i in 0..2000u64 {
            let expect = mix3(11, i, WRITE_STREAM) % 1_000_000 < (ratio * 1e6) as u64;
            assert_eq!(desugared.is_write(11, i), expect, "index {i}");
            writes += u64::from(expect);
        }
        assert!(writes > 100, "write gate never fired");
        // Ratio 0 never writes.
        let frozen = PhaseMix::from_mix(&legacy, 0.0);
        assert!((0..2000u64).all(|i| !frozen.is_write(11, i)));
    }

    #[test]
    fn all_mutate_mix_is_pure_write() {
        let g = graph();
        let ops = [OpSpec {
            kind: OpClass::Mutate,
            weight: 3,
            dist: DistSpec::Uniform,
            span: SpanSpec::Full,
        }];
        let mix = PhaseMix::from_specs(&ops, &g).unwrap();
        assert_eq!(mix.write_ppm(), 1_000_000);
        assert!((0..500u64).all(|i| mix.is_write(11, i)));
    }

    #[test]
    fn span_specs_resolve_like_the_presets() {
        assert_eq!(SpanSpec::Full.resolve(64), 64);
        assert_eq!(SpanSpec::Fraction(1, 8).resolve(64), 8);
        // hotspot's (n/8).max(1) on a tiny graph:
        assert_eq!(SpanSpec::Fraction(1, 8).resolve(5), 1);
        assert_eq!(SpanSpec::Absolute(10).resolve(4), 4);
        assert_eq!(SpanSpec::Absolute(3).resolve(64), 3);
    }

    #[test]
    fn workload_names_resolve_case_insensitively() {
        assert_eq!(parse_workload("pagerank"), Some(Workload::PageRank));
        assert_eq!(parse_workload("CcHashMin"), Some(Workload::CcHashMin));
        assert_eq!(parse_workload("nope"), None);
    }
}
