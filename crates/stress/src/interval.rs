//! Per-interval histogram logging (à la cql-stress's histogram log
//! writer): a [`IntervalSeries`] buckets samples by *when they completed*
//! relative to a run origin, keeping one latency [`LogHistogram`] plus
//! ok/error counters per fixed-width interval.
//!
//! The series is the time axis the end-of-run histogram flattens away:
//! warmup transients, epoch-swap stalls, and hot-shard tails show up as
//! per-interval p99 excursions that an aggregate histogram hides. Two
//! identities hold by construction and are enforced by the stress binary's
//! `--validate-report`:
//!
//! * within a slot, `hist.count() == ok + errors` (every sample is recorded
//!   under one call);
//! * across a series, the interval sums fold *exactly* to the end-of-run
//!   totals — [`LogHistogram::merge`] is exact, so merging every slot's
//!   histogram reproduces the aggregate histogram bit for bit.

use vcgp_testkit::LogHistogram;

/// One interval's samples: a latency histogram plus outcome counters.
#[derive(Debug, Clone, Default)]
pub struct IntervalSlot {
    /// Samples recorded with `ok = true`.
    pub ok: u64,
    /// Samples recorded with `ok = false`.
    pub errors: u64,
    /// Every sample of the interval (ok and errored alike).
    pub hist: LogHistogram,
}

impl IntervalSlot {
    /// True when nothing landed in this interval.
    pub fn is_empty(&self) -> bool {
        self.hist.is_empty()
    }
}

/// A run-relative series of fixed-width interval slots. Slots are grown
/// lazily on first record, so an idle tail costs nothing.
#[derive(Debug, Clone)]
pub struct IntervalSeries {
    interval_ns: u64,
    slots: Vec<IntervalSlot>,
}

impl IntervalSeries {
    /// An empty series with the given interval width.
    ///
    /// # Panics
    /// Panics when `interval_ns` is zero.
    pub fn new(interval_ns: u64) -> IntervalSeries {
        assert!(interval_ns > 0, "interval width must be positive");
        IntervalSeries { interval_ns, slots: Vec::new() }
    }

    /// The interval width in nanoseconds.
    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }

    /// Records one sample: `value_ns` (latency or service time) observed at
    /// `at_ns` nanoseconds past the series origin, with its outcome.
    pub fn record(&mut self, at_ns: u64, value_ns: u64, ok: bool) {
        let idx = (at_ns / self.interval_ns) as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, IntervalSlot::default);
        }
        let slot = &mut self.slots[idx];
        slot.hist.record(value_ns);
        if ok {
            slot.ok += 1;
        } else {
            slot.errors += 1;
        }
    }

    /// Folds `other` into this series slot by slot. Both must have the
    /// same interval width (they describe the same time axis).
    pub fn merge(&mut self, other: &IntervalSeries) {
        assert_eq!(
            self.interval_ns, other.interval_ns,
            "cannot merge series with different interval widths"
        );
        if other.slots.len() > self.slots.len() {
            self.slots.resize_with(other.slots.len(), IntervalSlot::default);
        }
        for (mine, theirs) in self.slots.iter_mut().zip(&other.slots) {
            mine.ok += theirs.ok;
            mine.errors += theirs.errors;
            mine.hist.merge(&theirs.hist);
        }
    }

    /// Forgets every slot, keeping the interval width.
    pub fn clear(&mut self) {
        self.slots.clear();
    }

    /// All slots in time order (possibly-empty gaps included).
    pub fn slots(&self) -> &[IntervalSlot] {
        &self.slots
    }

    /// Non-empty slots as `(interval index, slot)`, in time order — the
    /// sparse view the JSON report emits.
    pub fn nonempty(&self) -> impl Iterator<Item = (usize, &IntervalSlot)> {
        self.slots.iter().enumerate().filter(|(_, s)| !s.is_empty())
    }

    /// Number of intervals that recorded at least one sample.
    pub fn completed_intervals(&self) -> usize {
        self.nonempty().count()
    }

    /// Total samples across every slot (== the aggregate histogram's count
    /// when the fold identity holds).
    pub fn total_count(&self) -> u64 {
        self.slots.iter().map(|s| s.hist.count()).sum()
    }

    /// Merges every slot's histogram into one aggregate — exactly the
    /// histogram of recording all samples without the time axis.
    pub fn folded(&self) -> LogHistogram {
        let mut all = LogHistogram::new();
        for s in &self.slots {
            all.merge(&s.hist);
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_their_interval() {
        let mut s = IntervalSeries::new(1_000);
        s.record(0, 10, true);
        s.record(999, 20, true);
        s.record(1_000, 30, false);
        s.record(5_500, 40, true);
        assert_eq!(s.slots().len(), 6);
        assert_eq!(s.slots()[0].ok, 2);
        assert_eq!(s.slots()[1].errors, 1);
        assert!(s.slots()[2].is_empty());
        assert_eq!(s.slots()[5].ok, 1);
        assert_eq!(s.completed_intervals(), 3);
        assert_eq!(s.nonempty().map(|(i, _)| i).collect::<Vec<_>>(), vec![0, 1, 5]);
    }

    #[test]
    fn slot_counts_match_slot_histograms() {
        let mut s = IntervalSeries::new(100);
        for i in 0..500u64 {
            s.record(i * 7, i, i % 3 != 0);
        }
        for (i, slot) in s.slots().iter().enumerate() {
            assert_eq!(slot.hist.count(), slot.ok + slot.errors, "slot {i}");
        }
    }

    #[test]
    fn fold_identity_reproduces_the_aggregate() {
        let mut series = IntervalSeries::new(250);
        let mut aggregate = LogHistogram::new();
        for i in 0..1000u64 {
            let v = i * i % 7919;
            series.record(i * 13, v, true);
            aggregate.record(v);
        }
        let folded = series.folded();
        assert_eq!(folded.count(), aggregate.count());
        assert_eq!(series.total_count(), aggregate.count());
        assert_eq!(folded.min(), aggregate.min());
        assert_eq!(folded.max(), aggregate.max());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(folded.quantile(q), aggregate.quantile(q), "q={q}");
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut whole = IntervalSeries::new(500);
        let mut a = IntervalSeries::new(500);
        let mut b = IntervalSeries::new(500);
        for i in 0..300u64 {
            let (at, v, ok) = (i * 31, i * 11 % 997, i % 5 != 0);
            whole.record(at, v, ok);
            if i % 2 == 0 { a.record(at, v, ok) } else { b.record(at, v, ok) }
        }
        a.merge(&b);
        assert_eq!(a.slots().len(), whole.slots().len());
        for (sa, sw) in a.slots().iter().zip(whole.slots()) {
            assert_eq!(sa.ok, sw.ok);
            assert_eq!(sa.errors, sw.errors);
            assert_eq!(sa.hist.count(), sw.hist.count());
            assert_eq!(sa.hist.quantile(0.99), sw.hist.quantile(0.99));
        }
    }

    #[test]
    #[should_panic(expected = "different interval widths")]
    fn merge_rejects_mismatched_widths() {
        let mut a = IntervalSeries::new(100);
        a.merge(&IntervalSeries::new(200));
    }

    #[test]
    fn clear_resets_the_series() {
        let mut s = IntervalSeries::new(100);
        s.record(50, 1, true);
        s.clear();
        assert_eq!(s.slots().len(), 0);
        assert_eq!(s.completed_intervals(), 0);
        s.record(150, 2, true);
        assert_eq!(s.slots().len(), 2);
    }
}
