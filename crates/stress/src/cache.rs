//! Per-shard result cache: fingerprinted memoization of analytics answers
//! and scattered partials.
//!
//! One [`ResultCache`] exists per shard and is shared by every replica
//! core serving that shard. [`CacheKey`] is **replica-agnostic** — it
//! captures `(workload, fingerprint, seed, scope)` and nothing about which
//! replica computed or looked up the entry — so an answer inserted via one
//! replica is a hit no matter where the routing policy sends the repeat,
//! and the hit/miss counters count each shard-level lookup exactly once.
//!
//! Every serving-path answer is a pure function of
//! `(workload, graph, seed)` (see [`vcgp_core::service::run_workload`]) and
//! a scattered leg's partial additionally of the shard's owned slice — both
//! captured by a [`CacheKey`] built on the stable
//! [`vcgp_core::fingerprint::graph_fingerprint`]. Repeated analytics
//! queries in a stress mix therefore never need to re-run the Pregel
//! engine: [`crate::service::Core`] consults its [`ResultCache`] at submit
//! time and answers hits without enqueueing, and executors insert every
//! freshly computed answer on the way out.
//!
//! **Eviction is a segmented LRU** (probation + protected), strictly
//! capacity-bounded in entries — the memory-efficiency posture iPregel
//! argues for, rather than an unbounded memo table:
//!
//! * a first-time key enters *probation*;
//! * a hit promotes the key to the *protected* segment (capped at
//!   [`PROTECTED_NUM`]/[`PROTECTED_DEN`] of capacity; overflow demotes the
//!   protected LRU back to probation rather than evicting it);
//! * at capacity, the probation LRU is evicted first, so a one-shot scan of
//!   fresh keys cannot flush the re-referenced working set.
//!
//! Recency is a logical access counter, **never a wall clock**: the same
//! request sequence produces the same hit/miss/eviction trace on any
//! machine at any speed, which is what lets `scripts/verify.sh` gate on
//! cache behaviour deterministically.
//!
//! Invalidation: [`ResultCache::invalidate_all`] drops every entry while
//! keeping the monotone counters. The serving layer calls it through
//! [`crate::service::GraphService::invalidate_cache`] /
//! [`crate::shard::ShardedGraphService::invalidate_cache`], and the epoch
//! writer (see [`crate::epoch`]) now fires it after every snapshot swap.
//! Correctness never depended on it: cache keys derive from the request's
//! *pinned epoch* fingerprint (whole-graph and per-leg), so entries from
//! an older epoch can never be confused for current ones — the hook
//! reclaims their memory so dead fingerprints don't pin capacity.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use vcgp_core::service::Partial;
use vcgp_core::Workload;

/// Protected-segment share of capacity: `PROTECTED_NUM / PROTECTED_DEN`
/// (the classic SLRU split — most of the cache is reserved for keys that
/// have proven a second reference).
const PROTECTED_NUM: usize = 4;
/// See [`PROTECTED_NUM`].
const PROTECTED_DEN: usize = 5;

/// Whether a cached value is a whole answer or one shard's scattered leg.
///
/// The discriminant is part of the key because a single-instance service
/// can serve both kinds for the same `(workload, fingerprint, seed)` triple
/// and their payload types differ ([`CachedAnswer::Whole`] vs
/// [`CachedAnswer::Leg`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheScope {
    /// A whole-graph answer (direct requests and the primary-shard
    /// fall-back path).
    Whole,
    /// One shard's owned-slice partial of a scattered workload. The
    /// fingerprint in the key is the
    /// [`leg_fingerprint`](vcgp_core::fingerprint::leg_fingerprint) of the
    /// full graph and the shard slice.
    Leg,
}

/// The identity of one memoizable serving-path computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The Table 1 workload.
    pub workload: Workload,
    /// Whole answer vs scattered leg.
    pub scope: CacheScope,
    /// Graph identity: the full graph's fingerprint for
    /// [`CacheScope::Whole`], the leg fingerprint (full ⊕ slice) for
    /// [`CacheScope::Leg`].
    pub fingerprint: u64,
    /// The request seed (source-parameterized workloads derive their source
    /// from it, so it is part of the answer's identity).
    pub seed: u64,
}

/// A memoized serving-path result, cheap to clone (all scalars).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CachedAnswer {
    /// A whole workload answer plus its run costs (the costs are part of
    /// the response contract, so they are memoized alongside the answer).
    Whole {
        /// The workload's scalar answer.
        answer: u64,
        /// Supersteps of the (memoized) run.
        supersteps: u64,
        /// Messages of the (memoized) run.
        messages: u64,
    },
    /// One shard's owned-slice partial plus its run costs.
    Leg {
        /// The owned-slice partial.
        partial: Partial,
        /// Supersteps of the (memoized) run.
        supersteps: u64,
        /// Messages of the (memoized) run.
        messages: u64,
    },
}

/// Monotone cache counters plus the resident-size gauges, snapshot by
/// [`ResultCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing (only *cacheable* requests count — point
    /// lookups never consult the cache).
    pub misses: u64,
    /// Entries inserted (first-time keys; re-inserting an existing key
    /// refreshes it without counting again).
    pub insertions: u64,
    /// Entries evicted at capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Approximate bytes held by resident entries (entry count times the
    /// fixed per-entry footprint — answers are scalars, so this is exact up
    /// to map overhead).
    pub resident_bytes: u64,
}

/// Fixed per-entry footprint estimate: key + value + recency bookkeeping +
/// a constant for the two index entries (hash map slot and recency-order
/// node). Values are scalar-only, so entries are genuinely fixed-size.
const fn entry_bytes() -> u64 {
    (std::mem::size_of::<CacheKey>()
        + std::mem::size_of::<Slot>()
        + std::mem::size_of::<(u64, CacheKey)>()
        + 48) as u64
}

/// One resident entry: the value plus its recency bookkeeping.
struct Slot {
    value: CachedAnswer,
    /// Logical access stamp; also the entry's key in its segment's
    /// recency order.
    tick: u64,
    /// Which segment the entry currently lives in.
    protected: bool,
}

struct Inner {
    map: HashMap<CacheKey, Slot>,
    /// Probation recency order: logical tick → key, oldest first.
    probation: BTreeMap<u64, CacheKey>,
    /// Protected recency order.
    protected: BTreeMap<u64, CacheKey>,
    /// Logical clock: bumped on every insert/touch, so recency is
    /// deterministic and wall-clock-free.
    tick: u64,
}

/// A capacity-bounded, segmented-LRU memo table for serving-path answers.
///
/// Thread-safe: lookups and inserts take one internal mutex (the critical
/// sections are a hash probe plus O(log capacity) order maintenance —
/// negligible next to the engine runs being memoized). Counters are atomic
/// and readable without the lock.
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
    protected_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// A cache bounded to `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero — a disabled cache is expressed by not
    /// constructing one (see `ServiceConfig::cache_capacity`).
    pub fn new(capacity: usize) -> ResultCache {
        assert!(capacity >= 1, "cache capacity must be positive");
        ResultCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                probation: BTreeMap::new(),
                protected: BTreeMap::new(),
                tick: 0,
            }),
            capacity,
            // At least one protected slot so tiny caches still promote.
            protected_capacity: (capacity * PROTECTED_NUM / PROTECTED_DEN).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks `key` up, counting a hit or miss. A hit refreshes the entry's
    /// recency and promotes it to the protected segment.
    pub fn get(&self, key: &CacheKey) -> Option<CachedAnswer> {
        let mut inner = self.inner.lock().unwrap();
        let inner = &mut *inner;
        let Some(slot) = inner.map.get_mut(key) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let value = slot.value;
        // Detach from the current segment, restamp, re-attach as the
        // protected MRU.
        let old_tick = slot.tick;
        if slot.protected {
            inner.protected.remove(&old_tick);
        } else {
            inner.probation.remove(&old_tick);
        }
        inner.tick += 1;
        slot.tick = inner.tick;
        slot.protected = true;
        inner.protected.insert(inner.tick, *key);
        // Protected overflow demotes its LRU back to probation (keeping its
        // stamp, so it ages ahead of genuinely fresh probation entries).
        if inner.protected.len() > self.protected_capacity {
            let (&lru_tick, &lru_key) = inner.protected.iter().next().unwrap();
            inner.protected.remove(&lru_tick);
            inner.probation.insert(lru_tick, lru_key);
            inner.map.get_mut(&lru_key).unwrap().protected = false;
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(value)
    }

    /// Inserts (or refreshes) `key`, evicting the probation LRU — or, when
    /// probation is empty, the protected LRU — once past capacity.
    pub fn insert(&self, key: CacheKey, value: CachedAnswer) {
        let mut inner = self.inner.lock().unwrap();
        let inner = &mut *inner;
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(slot) = inner.map.get_mut(&key) {
            // Refresh in place: same segment, new recency stamp. (The
            // deterministic engine recomputes identical values, so this is
            // a recency touch, not a data change.)
            let seg = if slot.protected { &mut inner.protected } else { &mut inner.probation };
            seg.remove(&slot.tick);
            seg.insert(tick, key);
            slot.tick = tick;
            slot.value = value;
            return;
        }
        inner.map.insert(key, Slot { value, tick, protected: false });
        inner.probation.insert(tick, key);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if inner.map.len() > self.capacity {
            let victim = inner
                .probation
                .iter()
                .next()
                .or_else(|| inner.protected.iter().next())
                .map(|(&t, &k)| (t, k))
                .expect("over-capacity cache cannot be empty");
            let slot = inner.map.remove(&victim.1).unwrap();
            if slot.protected {
                inner.protected.remove(&victim.0);
            } else {
                inner.probation.remove(&victim.0);
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drops every entry (graph swap / re-shard hook). Monotone counters
    /// are kept; the resident gauges fall to zero.
    pub fn invalidate_all(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.map.clear();
        inner.probation.clear();
        inner.protected.clear();
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time snapshot of counters and resident gauges.
    pub fn stats(&self) -> CacheStats {
        let entries = self.len() as u64;
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            resident_bytes: entries * entry_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64) -> CacheKey {
        CacheKey {
            workload: Workload::Sssp,
            scope: CacheScope::Whole,
            fingerprint: 0xF00D,
            seed,
        }
    }

    fn answer(x: u64) -> CachedAnswer {
        CachedAnswer::Whole { answer: x, supersteps: 3, messages: 17 }
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let c = ResultCache::new(8);
        assert_eq!(c.get(&key(1)), None);
        c.insert(key(1), answer(42));
        assert_eq!(c.get(&key(1)), Some(answer(42)));
        assert_eq!(c.get(&key(2)), None, "different seed is a different key");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.evictions), (1, 2, 1, 0));
        assert_eq!(s.entries, 1);
        assert_eq!(s.resident_bytes, entry_bytes());
    }

    #[test]
    fn scope_and_fingerprint_separate_keys() {
        let c = ResultCache::new(8);
        let whole = key(7);
        let leg = CacheKey { scope: CacheScope::Leg, ..whole };
        let other_graph = CacheKey { fingerprint: 0xBEEF, ..whole };
        c.insert(whole, answer(1));
        assert_eq!(c.get(&leg), None);
        assert_eq!(c.get(&other_graph), None);
        assert_eq!(c.get(&whole), Some(answer(1)));
    }

    #[test]
    fn capacity_is_a_hard_bound_and_eviction_is_lru() {
        let c = ResultCache::new(4);
        for i in 0..10 {
            c.insert(key(i), answer(i));
            assert!(c.len() <= 4, "resident {} exceeds capacity", c.len());
        }
        let s = c.stats();
        assert_eq!(s.insertions, 10);
        assert_eq!(s.evictions, 6);
        // The four youngest probation entries survive.
        for i in 0..6 {
            assert_eq!(c.get(&key(i)), None, "key {i} should have been evicted");
        }
        for i in 6..10 {
            assert_eq!(c.get(&key(i)), Some(answer(i)), "key {i} should survive");
        }
    }

    #[test]
    fn protected_segment_resists_a_one_shot_scan() {
        let c = ResultCache::new(4);
        // Establish a re-referenced working set of 2 (promoted to
        // protected by the hit).
        c.insert(key(100), answer(100));
        c.insert(key(101), answer(101));
        assert!(c.get(&key(100)).is_some());
        assert!(c.get(&key(101)).is_some());
        // A scan of 6 one-shot keys churns through probation only.
        for i in 0..6 {
            c.insert(key(i), answer(i));
        }
        assert_eq!(c.get(&key(100)), Some(answer(100)), "protected survived the scan");
        assert_eq!(c.get(&key(101)), Some(answer(101)), "protected survived the scan");
        assert!(c.len() <= 4);
    }

    #[test]
    fn eviction_trace_is_deterministic() {
        let run = || {
            let c = ResultCache::new(3);
            for i in 0..20u64 {
                if i % 3 == 0 {
                    let _ = c.get(&key(i % 7));
                }
                c.insert(key(i % 7), answer(i));
            }
            let resident: Vec<u64> = (0..7).filter(|&s| c.get(&key(s)).is_some()).collect();
            let st = c.stats();
            (resident, st.hits, st.misses, st.insertions, st.evictions)
        };
        assert_eq!(run(), run(), "same sequence, same trace — no wall clock involved");
    }

    #[test]
    fn invalidate_all_empties_but_keeps_counters() {
        let c = ResultCache::new(8);
        c.insert(key(1), answer(1));
        assert!(c.get(&key(1)).is_some());
        c.invalidate_all();
        assert!(c.is_empty());
        assert_eq!(c.get(&key(1)), None, "invalidated entry is gone");
        let s = c.stats();
        assert_eq!(s.hits, 1, "monotone counters survive invalidation");
        assert_eq!(s.resident_bytes, 0);
        // The cache keeps working after invalidation.
        c.insert(key(2), answer(2));
        assert_eq!(c.get(&key(2)), Some(answer(2)));
    }

    #[test]
    fn refresh_does_not_double_count_insertions() {
        let c = ResultCache::new(4);
        c.insert(key(1), answer(1));
        c.insert(key(1), answer(1));
        let s = c.stats();
        assert_eq!(s.insertions, 1);
        assert_eq!(s.entries, 1);
    }
}
