//! Epoch-versioned graph snapshots: the live-mutation subsystem.
//!
//! Production graphs are not static. This module turns the frozen serving
//! stack into a *multi-version* one: the resident graph becomes a sequence
//! of immutable [`EpochSnapshot`]s with monotonically increasing epoch ids.
//! Queries pin the current snapshot at submission and run against it to
//! completion — even while a writer is already installing the next epoch —
//! so every answer is internally consistent with exactly one version of the
//! graph (*snapshot isolation*), and scattered analytics legs all see the
//! same version because the router stamps one snapshot across the fan-out.
//!
//! Writes flow through the [`EpochManager`]:
//!
//! * [`EpochManager::accept`] appends a [`Mutation`] to a **bounded write
//!   buffer** (backpressure when full, like the query queue under
//!   [`crate::service::QueueFullPolicy::Block`]);
//! * a dedicated writer thread drains the buffer in batches (at most
//!   [`MutationConfig::max_batch`] per epoch), builds epoch *N+1* off the
//!   serving path via an [`EpochRebuild`] backend (incremental CSR splice —
//!   see [`vcgp_graph::apply_batch`] / [`vcgp_graph::splice_slice`] — not a
//!   from-scratch rebuild when the delta is small), then **swaps
//!   atomically** and fires the result-cache invalidation hook;
//! * in-flight queries keep serving from their pinned epoch; new
//!   submissions pick up the fresh one. Old snapshots die when the last
//!   pinned request drops its `Arc`.
//!
//! Replicated shards change nothing about versioning: every replica core of
//! a shard serves the same `Arc<EpochSnapshot>` and shard slice, a swap
//! installs the new snapshot once per *shard* (replicas observe it through
//! the shared pointer, never one replica at a time), and the invalidation
//! hook fires once per shard cache — replicas share that cache, so there is
//! no per-replica staleness window for the routing policy to expose.
//!
//! Cache correctness is belt *and* suspenders: every epoch recomputes the
//! order-independent graph/leg fingerprints, so a stale entry can never
//! alias a new epoch's answer even without invalidation — the invalidation
//! at swap (the hook `cache.rs` reserved for exactly this) just stops dead
//! entries from pinning capacity.
//!
//! Freshness is measured, not assumed: the manager keeps mergeable
//! log-bucketed histograms of the **swap pause** (the serving-visible
//! window: pointer swap + cache invalidation; the rebuild itself happens
//! before, off the serving path), the **write-apply latency** (accept →
//! installed, per mutation), and the **freshness lag** (how stale the
//! serving epoch is relative to the newest accepted mutation, sampled at
//! each swap). [`EpochManager::writer_baseline`] snapshots the counters and
//! resets the histograms atomically, so the stress driver's `--repeat`
//! passes each report exactly their own run.
//!
//! The seeded mutation stream ([`mutation_op`]) is a pure
//! `(seed, index) → Mutation` function like the query mix, so a fixed seed
//! reproduces the exact write sequence regardless of client interleaving.

use crate::service::SubmitError;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use vcgp_graph::rng::mix3;
use vcgp_graph::{ApplyStats, Graph, Mutation, SplitMix64, VertexId};
use vcgp_testkit::LogHistogram;

/// Domain separator for the mutation stream.
pub const MUT_STREAM: u64 = 0x4D55_5453; // "MUTS"

/// One shard's slice of an epoch: the local subgraph plus the cache
/// identity derived from it. Immutable once built, shared via [`Arc`].
#[derive(Debug)]
pub struct ShardSlice {
    /// The shard-local directed CSR slice (owned out-adjacency over the
    /// full vertex-id space).
    pub local: Graph,
    /// Cache fingerprint of this shard's scattered legs on this epoch:
    /// whole-graph fingerprint ⊕ slice fingerprint ⊕ owned-id-set hash.
    pub leg_fp: u64,
    /// Vertices this shard owns in this epoch.
    pub owned: usize,
    /// Order-independent hash of the owned id set (folded into `leg_fp`;
    /// kept so the next epoch can extend it incrementally when the id
    /// space grows).
    pub owned_hash: u64,
}

/// One immutable version of the resident graph. Queries pin the snapshot
/// current at submission; the writer installs successors with `id + 1`.
#[derive(Debug)]
pub struct EpochSnapshot {
    /// Monotone epoch id (0 = the initially loaded graph).
    pub id: u64,
    /// The full structural graph of this epoch.
    pub graph: Arc<Graph>,
    /// Order-independent structural fingerprint of `graph` (the whole-
    /// answer cache identity of this epoch).
    pub fingerprint: u64,
    /// Per-shard slices (empty for the single-instance service, which
    /// serves everything from `graph`).
    pub locals: Vec<Arc<ShardSlice>>,
}

/// Tuning knobs of the mutation subsystem. Present in
/// [`crate::service::ServiceConfig::mutations`] — `None` keeps the service
/// read-only (the pre-epoch behavior, with zero write-path overhead beyond
/// an `Arc` clone per submit).
#[derive(Debug, Clone)]
pub struct MutationConfig {
    /// Write-buffer capacity; at this many pending mutations
    /// [`EpochManager::accept`] blocks the writer client (backpressure).
    pub write_buffer: usize,
    /// Most mutations drained into a single epoch rebuild. Small batches
    /// bound freshness lag; large ones amortize the rebuild.
    pub max_batch: usize,
    /// Retain every installed snapshot (epoch 0 included) for
    /// [`EpochManager::history`]. Test instrumentation — unbounded, so
    /// keep it off outside tests.
    pub keep_history: bool,
}

impl Default for MutationConfig {
    fn default() -> Self {
        MutationConfig {
            write_buffer: 1024,
            max_batch: 64,
            keep_history: false,
        }
    }
}

/// Writer-side counters (monotone except the gauges; read with
/// [`EpochManager::writer_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriterStats {
    /// Id of the epoch currently serving (a gauge).
    pub epoch: u64,
    /// Epoch swaps installed.
    pub swaps: u64,
    /// Mutations accepted into the write buffer.
    pub accepted: u64,
    /// Mutations that changed the graph when applied.
    pub applied: u64,
    /// Mutations that were guard-rejected no-ops (duplicate insert,
    /// delete-of-missing, self-loop, reweight on an unweighted graph, …).
    pub noops: u64,
    /// Accepted mutations not yet installed in a serving epoch (a gauge:
    /// buffer backlog plus any batch mid-rebuild).
    pub pending: u64,
}

impl WriterStats {
    /// The counters accumulated *since* `earlier` (monotone counters
    /// subtract; the `epoch` and `pending` gauges keep their current
    /// values). The writer-side analogue of
    /// [`crate::service::ServiceStats::delta_since`], so `--repeat` passes
    /// don't double-count mutations.
    pub fn delta_since(&self, earlier: &WriterStats) -> WriterStats {
        WriterStats {
            epoch: self.epoch,
            swaps: self.swaps - earlier.swaps,
            accepted: self.accepted - earlier.accepted,
            applied: self.applied - earlier.applied,
            noops: self.noops - earlier.noops,
            pending: self.pending,
        }
    }
}

/// Counters plus the freshness histograms, as reported to the stress
/// driver. Histogram counts tie to the counters by construction:
/// `swap_pause.count() == stats.swaps == freshness_lag.count()` and
/// `write_apply.count() == stats.applied + stats.noops` (both are updated
/// under one lock, and [`EpochManager::writer_baseline`] resets them under
/// the same lock).
#[derive(Debug, Clone, Default)]
pub struct WriterReport {
    /// The counter snapshot.
    pub stats: WriterStats,
    /// Serving-visible pause per swap in nanoseconds: atomic pointer swap
    /// plus cache invalidation (the rebuild runs before, off the serving
    /// path).
    pub swap_pause: LogHistogram,
    /// Accept → installed latency per mutation, in nanoseconds.
    pub write_apply: LogHistogram,
    /// Staleness of the just-installed epoch at each swap, in nanoseconds:
    /// age of the oldest still-pending accept if a backlog remains, else
    /// age of the newest mutation the swap installed.
    pub freshness_lag: LogHistogram,
}

/// A mutation waiting in the write buffer, stamped with its accept time so
/// apply latency and freshness lag are measurable.
struct PendingWrite {
    mutation: Mutation,
    accepted_at: Instant,
}

struct WriteQueue {
    pending: VecDeque<PendingWrite>,
    closed: bool,
}

/// Counters and histograms that must move together: updated and reset
/// under one lock so the histogram-count identities in [`WriterReport`]
/// hold at every observable instant.
#[derive(Default)]
struct WriterProgress {
    swaps: u64,
    applied: u64,
    noops: u64,
    swap_pause: LogHistogram,
    write_apply: LogHistogram,
    freshness_lag: LogHistogram,
}

/// The multi-version state of a service: the current [`EpochSnapshot`]
/// plus, when mutations are enabled, the bounded write buffer the writer
/// thread drains. Shared between submitters (pin + accept), executors
/// (through pinned requests), and the writer (drain + swap).
pub struct EpochManager {
    current: Mutex<Arc<EpochSnapshot>>,
    /// `current.id` mirrored outside the lock, so stats never nest the
    /// snapshot lock under the progress lock.
    epoch_id: AtomicU64,
    writable: bool,
    queue: Mutex<WriteQueue>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    max_batch: usize,
    accepted: AtomicU64,
    progress: Mutex<WriterProgress>,
    /// Every installed snapshot, oldest first (epoch 0 included), when
    /// [`MutationConfig::keep_history`] is set.
    history: Option<Mutex<Vec<Arc<EpochSnapshot>>>>,
}

impl EpochManager {
    /// Wraps `initial` as the serving epoch. With `mutations: None` the
    /// manager is read-only: [`EpochManager::accept`] fails with
    /// [`SubmitError::ReadOnly`] and no write buffer exists.
    pub(crate) fn new(initial: EpochSnapshot, mutations: Option<&MutationConfig>) -> EpochManager {
        let initial = Arc::new(initial);
        let history = mutations
            .filter(|m| m.keep_history)
            .map(|_| Mutex::new(vec![Arc::clone(&initial)]));
        EpochManager {
            epoch_id: AtomicU64::new(initial.id),
            current: Mutex::new(initial),
            writable: mutations.is_some(),
            queue: Mutex::new(WriteQueue {
                pending: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: mutations.map_or(0, |m| m.write_buffer.max(1)),
            max_batch: mutations.map_or(1, |m| m.max_batch.max(1)),
            accepted: AtomicU64::new(0),
            progress: Mutex::new(WriterProgress::default()),
            history,
        }
    }

    /// The snapshot new submissions should pin.
    pub fn current(&self) -> Arc<EpochSnapshot> {
        Arc::clone(&self.current.lock().unwrap())
    }

    /// The serving epoch id (lock-free).
    pub fn epoch_id(&self) -> u64 {
        self.epoch_id.load(Ordering::Acquire)
    }

    /// Every installed snapshot, oldest first — `None` unless
    /// [`MutationConfig::keep_history`] was set.
    pub fn history(&self) -> Option<Vec<Arc<EpochSnapshot>>> {
        self.history.as_ref().map(|h| h.lock().unwrap().clone())
    }

    /// Appends one mutation to the write buffer, blocking while it is at
    /// capacity (write backpressure). Returns the mutation's 1-based
    /// accept sequence number. Fails with [`SubmitError::ReadOnly`] when
    /// the service was started without a [`MutationConfig`], and
    /// [`SubmitError::Closed`] once the service is shut down.
    pub fn accept(&self, mutation: Mutation) -> Result<u64, SubmitError> {
        if !self.writable {
            return Err(SubmitError::ReadOnly);
        }
        let mut queue = self.queue.lock().unwrap();
        loop {
            if queue.closed {
                return Err(SubmitError::Closed);
            }
            if queue.pending.len() < self.capacity {
                queue.pending.push_back(PendingWrite {
                    mutation,
                    accepted_at: Instant::now(),
                });
                drop(queue);
                let seq = self.accepted.fetch_add(1, Ordering::Relaxed) + 1;
                self.not_empty.notify_one();
                return Ok(seq);
            }
            queue = self.not_full.wait(queue).unwrap();
        }
    }

    /// Stops accepting mutations. The writer thread drains what was
    /// already accepted (installing final epochs) and then exits.
    pub fn close(&self) {
        let mut queue = self.queue.lock().unwrap();
        queue.closed = true;
        drop(queue);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// A snapshot of the writer counters.
    pub fn writer_stats(&self) -> WriterStats {
        let progress = self.progress.lock().unwrap();
        self.stats_locked(&progress)
    }

    /// Counters plus the freshness histograms.
    pub fn writer_report(&self) -> WriterReport {
        let progress = self.progress.lock().unwrap();
        WriterReport {
            stats: self.stats_locked(&progress),
            swap_pause: progress.swap_pause.clone(),
            write_apply: progress.write_apply.clone(),
            freshness_lag: progress.freshness_lag.clone(),
        }
    }

    /// Snapshots the counters **and resets the histograms** in one atomic
    /// step, so a driver run that starts from this baseline reports
    /// exactly its own swaps/applies in both the counter deltas and the
    /// histograms (log-bucketed histograms merge but cannot subtract).
    pub fn writer_baseline(&self) -> WriterStats {
        let mut progress = self.progress.lock().unwrap();
        let stats = self.stats_locked(&progress);
        progress.swap_pause = LogHistogram::new();
        progress.write_apply = LogHistogram::new();
        progress.freshness_lag = LogHistogram::new();
        stats
    }

    fn stats_locked(&self, progress: &WriterProgress) -> WriterStats {
        let accepted = self.accepted.load(Ordering::Relaxed);
        let processed = progress.applied + progress.noops;
        WriterStats {
            epoch: self.epoch_id(),
            swaps: progress.swaps,
            accepted,
            applied: progress.applied,
            noops: progress.noops,
            // Backlog gauge; `accepted` is read after the progress lock is
            // held, so a racing accept can only make this larger, never
            // negative.
            pending: accepted.saturating_sub(processed),
        }
    }

    /// Blocks until at least one mutation is buffered, then drains up to
    /// `max_batch` of them. `None` once the queue is closed *and* empty —
    /// the writer's exit signal (close-then-drain, like the query queues).
    fn drain_batch(&self) -> Option<Vec<PendingWrite>> {
        let mut queue = self.queue.lock().unwrap();
        loop {
            if !queue.pending.is_empty() {
                let take = queue.pending.len().min(self.max_batch);
                let batch: Vec<PendingWrite> = queue.pending.drain(..take).collect();
                drop(queue);
                self.not_full.notify_all();
                return Some(batch);
            }
            if queue.closed {
                return None;
            }
            queue = self.not_empty.wait(queue).unwrap();
        }
    }

    /// Installs `snap` as the serving epoch and records the swap metrics.
    fn install(&self, snap: Arc<EpochSnapshot>, stats: ApplyStats, batch: &[PendingWrite]) {
        // The serving-visible pause: everything between "epoch N answers
        // submissions" and "epoch N+1 answers submissions with a cold
        // cache". The rebuild already happened, off the serving path.
        let t0 = Instant::now();
        {
            let mut current = self.current.lock().unwrap();
            *current = Arc::clone(&snap);
        }
        self.epoch_id.store(snap.id, Ordering::Release);
        let pause = t0.elapsed();
        let now = Instant::now();
        // Freshness lag of the new epoch: if a backlog remains, the oldest
        // still-pending accept bounds how stale serving still is; else the
        // newest mutation this swap installed.
        let lag = {
            let queue = self.queue.lock().unwrap();
            match queue.pending.front() {
                Some(w) => now.saturating_duration_since(w.accepted_at),
                None => batch
                    .last()
                    .map_or(Duration::ZERO, |w| now.saturating_duration_since(w.accepted_at)),
            }
        };
        {
            let mut progress = self.progress.lock().unwrap();
            progress.swaps += 1;
            progress.applied += stats.applied;
            progress.noops += stats.noops;
            progress.swap_pause.record(pause.as_nanos() as u64);
            progress.freshness_lag.record(lag.as_nanos() as u64);
            for w in batch {
                progress
                    .write_apply
                    .record(now.saturating_duration_since(w.accepted_at).as_nanos() as u64);
            }
        }
        if let Some(history) = &self.history {
            history.lock().unwrap().push(snap);
        }
    }
}

/// How the writer thread turns (base epoch, mutation batch) into the next
/// epoch. Implemented over the full graph by [`crate::service::GraphService`]
/// and with incremental per-shard slice rebuilds by
/// [`crate::shard::ShardedGraphService`].
pub(crate) trait EpochRebuild: Send + 'static {
    /// Builds epoch `base.id + 1` (graph, fingerprints, shard slices) from
    /// `base` with `batch` applied. Runs off the serving path.
    fn rebuild(&self, base: &EpochSnapshot, batch: &[Mutation]) -> (EpochSnapshot, ApplyStats);
    /// Fires the result-cache invalidation on every core, after the swap.
    fn invalidate(&self);
}

/// Spawns the writer thread: drain a batch, rebuild the next epoch, swap,
/// invalidate caches, repeat; exits once the manager is closed and the
/// buffer is drained (so no accepted mutation is ever lost).
pub(crate) fn spawn_writer(
    manager: Arc<EpochManager>,
    rebuild: Box<dyn EpochRebuild>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("vcgp-epoch-writer".to_string())
        .spawn(move || {
            while let Some(batch) = manager.drain_batch() {
                let base = manager.current();
                let mutations: Vec<Mutation> = batch.iter().map(|w| w.mutation).collect();
                let (mut snap, stats) = rebuild.rebuild(&base, &mutations);
                snap.id = base.id + 1;
                manager.install(Arc::new(snap), stats, &batch);
                // Invalidate *after* the swap: entries inserted for the old
                // epoch between swap and invalidation are keyed by the old
                // fingerprint and unreachable from new submissions anyway.
                rebuild.invalidate();
            }
        })
        .expect("spawn epoch writer")
}

/// The seeded mutation stream: the operation at `index` in the write run
/// seeded by `seed`, as a pure function (the write-side analogue of
/// [`crate::mix::Mix::op`]). Vertex ids are drawn from `[0, base_n)` — the
/// *initial* vertex-id space, so the stream is independent of how many
/// vertices earlier mutations added.
///
/// The mix: 45 % edge inserts (unit weight, never a self-loop), 25 %
/// rank-addressed edge deletes ([`Mutation::DeleteEdgeAt`] resolves the
/// rank against the live adjacency, so deletes hit existing edges instead
/// of missing ~everything on a sparse graph), 15 % rank-addressed
/// reweights (guard-rejected no-ops on unweighted graphs), 10 % vertex
/// adds, 5 % vertex removals (detach: the id space never shrinks, so
/// pinned epochs and the frozen partitioner stay valid).
pub fn mutation_op(seed: u64, index: u64, base_n: usize) -> Mutation {
    assert!(base_n >= 2, "mutation stream needs at least two vertices");
    let mut rng = SplitMix64::new(mix3(seed, index, MUT_STREAM));
    let roll = rng.next_below(100);
    let u = rng.next_index(base_n) as VertexId;
    if roll < 45 {
        let v = ((u as usize + 1 + rng.next_index(base_n - 1)) % base_n) as VertexId;
        Mutation::InsertEdge { u, v, w: 1.0 }
    } else if roll < 70 {
        Mutation::DeleteEdgeAt {
            u,
            rank: rng.next_below(1 << 20) as u32,
        }
    } else if roll < 85 {
        Mutation::ReweightAt {
            u,
            rank: rng.next_below(1 << 20) as u32,
            w: 0.5 + rng.next_f64() * 4.0,
        }
    } else if roll < 95 {
        Mutation::AddVertex {
            label: rng.next_below(8) as u32,
        }
    } else {
        Mutation::RemoveVertex { v: u }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;

    fn snapshot(graph: Graph, id: u64) -> EpochSnapshot {
        let fingerprint = vcgp_core::fingerprint::graph_fingerprint(&graph);
        EpochSnapshot {
            id,
            graph: Arc::new(graph),
            fingerprint,
            locals: Vec::new(),
        }
    }

    #[test]
    fn mutation_op_is_a_pure_function() {
        for i in 0..200 {
            assert_eq!(mutation_op(7, i, 64), mutation_op(7, i, 64), "index {i}");
        }
        let a: Vec<Mutation> = (0..64).map(|i| mutation_op(1, i, 64)).collect();
        let b: Vec<Mutation> = (0..64).map(|i| mutation_op(2, i, 64)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn mutation_op_never_emits_a_self_loop_insert() {
        for i in 0..2000 {
            if let Mutation::InsertEdge { u, v, .. } = mutation_op(11, i, 16) {
                assert_ne!(u, v, "index {i}");
                assert!((u as usize) < 16 && (v as usize) < 16);
            }
        }
    }

    #[test]
    fn read_only_manager_rejects_writes() {
        let g = generators::gnm_connected(8, 10, 3);
        let mgr = EpochManager::new(snapshot(g, 0), None);
        assert_eq!(
            mgr.accept(Mutation::AddVertex { label: 0 }),
            Err(SubmitError::ReadOnly)
        );
        assert_eq!(mgr.epoch_id(), 0);
        assert_eq!(mgr.writer_stats(), WriterStats::default());
        assert!(mgr.history().is_none());
    }

    #[test]
    fn accept_sequences_and_close_rejects() {
        let g = generators::gnm_connected(8, 10, 3);
        let mgr = EpochManager::new(snapshot(g, 0), Some(&MutationConfig::default()));
        assert_eq!(mgr.accept(Mutation::AddVertex { label: 0 }), Ok(1));
        assert_eq!(mgr.accept(Mutation::AddVertex { label: 1 }), Ok(2));
        let stats = mgr.writer_stats();
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.pending, 2);
        mgr.close();
        assert_eq!(
            mgr.accept(Mutation::AddVertex { label: 2 }),
            Err(SubmitError::Closed)
        );
    }

    #[test]
    fn writer_thread_installs_monotone_epochs_and_drains_on_close() {
        struct Rebuild;
        impl EpochRebuild for Rebuild {
            fn rebuild(
                &self,
                base: &EpochSnapshot,
                batch: &[Mutation],
            ) -> (EpochSnapshot, ApplyStats) {
                let (g, delta) = vcgp_graph::apply_batch(&base.graph, batch);
                (snapshot(g, base.id + 1), delta.stats)
            }
            fn invalidate(&self) {}
        }
        let g = generators::gnm_connected(16, 30, 5);
        let cfg = MutationConfig {
            max_batch: 2,
            keep_history: true,
            ..MutationConfig::default()
        };
        let mgr = Arc::new(EpochManager::new(snapshot(g, 0), Some(&cfg)));
        let writer = spawn_writer(Arc::clone(&mgr), Box::new(Rebuild));
        for i in 0..5 {
            mgr.accept(Mutation::AddVertex { label: i }).unwrap();
        }
        mgr.close();
        writer.join().unwrap();
        let stats = mgr.writer_stats();
        assert_eq!(stats.accepted, 5);
        assert_eq!(stats.applied, 5);
        assert_eq!(stats.noops, 0);
        assert_eq!(stats.pending, 0);
        assert!(stats.swaps >= 3, "max_batch 2 needs ≥ 3 swaps for 5 writes");
        assert_eq!(stats.epoch, stats.swaps);
        assert_eq!(mgr.current().graph.num_vertices(), 16 + 5);
        // History: monotone ids from 0, one entry per installed epoch.
        let history = mgr.history().unwrap();
        assert_eq!(history.len() as u64, stats.swaps + 1);
        for (i, snap) in history.iter().enumerate() {
            assert_eq!(snap.id, i as u64);
        }
        // Histogram counts tie to the counters (recorded under one lock).
        let report = mgr.writer_report();
        assert_eq!(report.swap_pause.count(), stats.swaps);
        assert_eq!(report.freshness_lag.count(), stats.swaps);
        assert_eq!(report.write_apply.count(), stats.applied + stats.noops);
    }

    #[test]
    fn baseline_scopes_counters_and_resets_histograms() {
        struct Rebuild;
        impl EpochRebuild for Rebuild {
            fn rebuild(
                &self,
                base: &EpochSnapshot,
                batch: &[Mutation],
            ) -> (EpochSnapshot, ApplyStats) {
                let (g, delta) = vcgp_graph::apply_batch(&base.graph, batch);
                (snapshot(g, base.id + 1), delta.stats)
            }
            fn invalidate(&self) {}
        }
        let g = generators::gnm_connected(16, 30, 5);
        let mgr = Arc::new(EpochManager::new(
            snapshot(g, 0),
            Some(&MutationConfig::default()),
        ));
        let writer = spawn_writer(Arc::clone(&mgr), Box::new(Rebuild));
        mgr.accept(Mutation::AddVertex { label: 0 }).unwrap();
        // Wait for the first run's write to be installed.
        while mgr.writer_stats().pending > 0 {
            std::thread::yield_now();
        }
        let base = mgr.writer_baseline();
        assert_eq!(base.accepted, 1);
        assert!(mgr.writer_report().write_apply.is_empty(), "baseline resets");
        mgr.accept(Mutation::AddVertex { label: 1 }).unwrap();
        mgr.accept(Mutation::AddVertex { label: 2 }).unwrap();
        mgr.close();
        writer.join().unwrap();
        let delta = mgr.writer_stats().delta_since(&base);
        assert_eq!(delta.accepted, 2, "second run scoped to its own writes");
        assert_eq!(delta.applied, 2);
        let report = mgr.writer_report();
        assert_eq!(report.write_apply.count(), delta.applied + delta.noops);
        assert_eq!(report.swap_pause.count(), delta.swaps);
    }
}
