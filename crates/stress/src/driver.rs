//! The load driver: client threads issuing a deterministic, seeded
//! operation stream against a [`StressTarget`] (the single-instance
//! [`GraphService`](crate::service::GraphService) or the sharded service),
//! paced by a token bucket (or unthrottled), recording latencies into
//! mergeable log-bucketed histograms.
//!
//! **Scenarios.** Every run is a [`Scenario`]: an ordered list of phases
//! (warmup / measure / cooldown), each with its own stop criterion
//! (duration and/or op count), client count, target rate, and compiled op
//! mix ([`crate::scenario::PhaseMix`]). The legacy entry point [`run`]
//! desugars a preset [`Mix`] + [`DriverConfig`] into a one-phase scenario
//! via [`Scenario::from_legacy`] — the desugaring reproduces the historical
//! op stream bit for bit, so the preset CLI surface is unchanged behavior
//! expressed through the scenario engine.
//!
//! **Interval logs.** Each phase's latency samples are additionally
//! bucketed by completion time into an [`IntervalSeries`] (striped per
//! client thread, merged exactly at the end), and the service side keeps
//! per-replica service-time series scoped to the run. Interval sums fold
//! *exactly* to the end-of-run histograms — `--validate-report` checks the
//! identity.
//!
//! **Coordinated omission.** When a rate is configured, each operation has
//! an *intended* start time on the fixed schedule `i · interval` and its
//! latency is measured from that intended time — so a stalled server is
//! charged for the operations that queued up behind the stall, not silently
//! excused. The separate service-time histogram measures execution only.
//!
//! **Sharding visibility.** Clients count routed-vs-scattered dispatches
//! from each response's [`Route`] and record the gather straggler penalty
//! of scattered operations; at the end of the run the target's per-shard
//! snapshots contribute occupancy (queue high-water marks), rejects, early
//! drops, and result-cache hit counts to the report — plus one row per
//! replica core (completed, queue high-water mark, executor busy time, and
//! the measured service-time histogram with its interval series), so a
//! replicated hot shard's load split is visible directly.
//!
//! **Run scoping.** Service counters are monotone for the process, but one
//! process can host several driver runs (the bin's `--repeat`, the cache
//! warm/hot comparison in `scripts/verify.sh`). The driver snapshots the
//! per-shard counters before spawning clients and reports the *delta*, and
//! resets the service-time recorders at the run origin, so every report
//! describes exactly its own run; gauges (queue high-water mark, cache
//! resident bytes) keep their end-of-run values.
//!
//! **Answer hashing.** Each client folds every successful payload into an
//! order-independent 64-bit `answer_hash` (XOR of per-operation mixes), so
//! two runs of the same seeded scenario can be checked for *bit-identical
//! answers* — not just matching counts — from the reports alone. Phase
//! hashes XOR to the run hash.

use crate::epoch::{mutation_op, WriterReport};
use crate::interval::IntervalSeries;
use crate::mix::Mix;
use crate::rate::TokenBucket;
use crate::request::{QueryError, QueryOutput, QueryRequest, Route};
use crate::router::StressTarget;
use crate::scenario::{Phase, Scenario};
use crate::service::{ReplicaSeries, ReplicaSnapshot, ShardSnapshot, SubmitError};
use vcgp_core::service::Partial;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use vcgp_graph::rng::mix3;
use vcgp_testkit::bench::json_escape;
use vcgp_testkit::LogHistogram;

/// Domain separator for per-request workload seeds.
const REQ_STREAM: u64 = 0x5245_5153; // "REQS"

/// Domain separator for the answer-hash fold.
const ANS_STREAM: u64 = 0x414E_5348; // "ANSH"

/// Hashes one successful payload, mixed with the operation id so identical
/// payloads at different stream positions stay distinguishable. XOR-folding
/// these per-operation mixes is order-independent, so the aggregate hash is
/// stable no matter how operations interleave across client threads.
fn output_hash(id: u64, out: &QueryOutput) -> u64 {
    let payload = match out {
        QueryOutput::Workload { answer, .. } => mix3(1, *answer, 0),
        QueryOutput::WorkloadPartial { partial, .. } => match *partial {
            Partial::Sum(v) => mix3(2, v, 0),
            Partial::Max(v) => mix3(3, v, 0),
            Partial::ArgMax { score, vertex } => mix3(4, mix3(score.to_bits(), vertex, 0), 0),
        },
        QueryOutput::Degree(d) => mix3(5, *d as u64, 0),
        // Neighbor lists are order-significant (CSR order), so chain rather
        // than fold commutatively.
        QueryOutput::Neighbors(ns) => ns
            .iter()
            .fold(mix3(6, ns.len() as u64, 0), |acc, &v| {
                mix3(acc, u64::from(v), 0)
            }),
        QueryOutput::Slept => mix3(7, 0, 0),
    };
    mix3(id, payload, ANS_STREAM)
}

/// Driver settings for the legacy preset entry point ([`run`]). A scenario
/// file supersedes all of this; [`Scenario::from_legacy`] maps these fields
/// onto a one-phase scenario.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Concurrent client threads (each submits and waits synchronously).
    pub clients: usize,
    /// Wall-clock run length.
    pub duration: Duration,
    /// Optional hard cap on issued operations (useful for exact-count
    /// deterministic runs in tests).
    pub ops_limit: Option<u64>,
    /// Target operation rate in ops/s; `None` = unthrottled max throughput.
    pub rate: Option<f64>,
    /// Token-bucket burst allowance when paced.
    pub burst: u32,
    /// Seed of the operation stream.
    pub seed: u64,
    /// Per-attempt timeout stamped on every request.
    pub timeout: Duration,
    /// Fraction of stream indices that issue a mutation instead of a query
    /// (0.0 = pure reads — bit-identical to a run without any write path).
    /// The decision is a pure function of `(mutation_seed, index)`, so a
    /// fixed seed pair reproduces the exact read/write interleaving.
    pub write_ratio: f64,
    /// Seed of the mutation stream (both the write decision and the
    /// mutation drawn; independent of the query-mix seed so read and write
    /// streams can be varied separately).
    pub mutation_seed: u64,
    /// Width of the interval-log slots.
    pub interval: Duration,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            clients: 4,
            duration: Duration::from_secs(2),
            ops_limit: None,
            rate: None,
            burst: 1,
            seed: 7,
            timeout: Duration::from_secs(5),
            write_ratio: 0.0,
            mutation_seed: 11,
            interval: Duration::from_secs(1),
        }
    }
}

/// One phase's aggregated measurements within a [`StressReport`]. The
/// run-level counters are the exact fold of the phase counters (sums /
/// histogram merges / XOR for the answer hash) — an identity
/// `--validate-report` checks.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Phase name from the scenario.
    pub name: String,
    /// Client threads the phase ran.
    pub clients: usize,
    /// Configured rate (`None` = unthrottled).
    pub rate: Option<f64>,
    /// Phase start, seconds after the run origin.
    pub start_s: f64,
    /// Wall-clock time the phase took.
    pub elapsed: Duration,
    /// Operations completed (ok + errored; writes counted apart).
    pub ops: u64,
    /// Operations that returned a payload.
    pub ok: u64,
    /// Operations that returned an error.
    pub errors: u64,
    /// Errors that were precondition rejections (subset of `errors`).
    pub unsupported: u64,
    /// Operations that exhausted their attempts (subset of `errors`).
    pub timeouts: u64,
    /// Retry attempts beyond each operation's first.
    pub retries: u64,
    /// Operations owner-routed to a single shard.
    pub routed: u64,
    /// Operations scattered to every shard and gather-merged.
    pub scattered: u64,
    /// Mutations accepted into the write buffer.
    pub writes: u64,
    /// Mutations refused at submission.
    pub write_errors: u64,
    /// XOR fold of this phase's successful payloads.
    pub answer_hash: u64,
    /// End-to-end latency (coordinated-omission-corrected when paced).
    pub latency: LogHistogram,
    /// Pure execution time reported per response.
    pub service_time: LogHistogram,
    /// Gather straggler penalty of scattered operations.
    pub gather: LogHistogram,
    /// Client-observed accept latency of successful mutation submissions.
    pub write_accept: LogHistogram,
    /// The phase's latency samples bucketed by completion time (relative
    /// to the phase start); folds exactly to `latency`, and its ok/error
    /// sums equal the phase counters.
    pub intervals: IntervalSeries,
}

/// Aggregated results of one driver run.
#[derive(Debug, Clone)]
pub struct StressReport {
    /// Scenario name (the mix preset name for legacy runs).
    pub mix: String,
    /// Operation-stream base seed.
    pub seed: u64,
    /// Client thread count (the maximum across phases).
    pub clients: usize,
    /// Configured rate of the first phase (`None` = unthrottled).
    pub rate: Option<f64>,
    /// Burst allowance of the first phase.
    pub burst: u32,
    /// Shards of the target service (1 = unsharded).
    pub shards: usize,
    /// Replica cores per shard (1 = unreplicated).
    pub replicas: usize,
    /// Replica-routing policy label (`round-robin` / `least-loaded`).
    pub routing: String,
    /// Interval-log slot width in nanoseconds.
    pub interval_ns: u64,
    /// Wall-clock time actually spent (all phases).
    pub elapsed: Duration,
    /// Operations completed (ok + errored).
    pub ops: u64,
    /// Operations that returned a payload.
    pub ok: u64,
    /// Operations that returned an error.
    pub errors: u64,
    /// Errors that were precondition rejections (subset of `errors`).
    pub unsupported: u64,
    /// Operations that exhausted their attempts (subset of `errors`).
    pub timeouts: u64,
    /// Retry attempts beyond each operation's first.
    pub retries: u64,
    /// Operations owner-routed to a single shard (or run whole on the
    /// primary shard).
    pub routed: u64,
    /// Operations scattered to every shard and gather-merged.
    pub scattered: u64,
    /// Requests shed at submission under the reject queue policy (from the
    /// service's counters).
    pub rejects: u64,
    /// Requests dropped at dequeue with an already-expired deadline (from
    /// the service's counters; disjoint from `timeouts`).
    pub early_drops: u64,
    /// Result-cache lookups answered without running the engine, summed
    /// across shards (this run only).
    pub cache_hits: u64,
    /// Result-cache misses on cacheable requests, summed across shards
    /// (this run only).
    pub cache_misses: u64,
    /// Result-cache insertions, summed across shards (this run only).
    pub cache_insertions: u64,
    /// Result-cache evictions at capacity, summed across shards (this run
    /// only).
    pub cache_evictions: u64,
    /// Bytes resident across every shard's result cache at the end of the
    /// run (a gauge — not scoped to the run).
    pub cache_bytes: u64,
    /// Mutations accepted into the write buffer by this run's clients
    /// (write operations are counted here, never in `ops`, so the read
    /// stream's accounting — and `answer_hash` — is write-ratio-0
    /// identical to a frozen run).
    pub writes: u64,
    /// Mutations refused at submission (read-only service, or closed).
    pub write_errors: u64,
    /// Writer-side counters and freshness histograms, scoped to this run
    /// (the driver takes a writer baseline next to the query-counter
    /// baseline, so `--repeat` passes don't double-count mutations). All
    /// zeros/empty for a read-only target.
    pub epochs: WriterReport,
    /// Client-observed accept latency of each successful mutation
    /// submission in nanoseconds (the write-side backpressure signal:
    /// rises when the write buffer fills faster than epochs install).
    pub write_accept: LogHistogram,
    /// Order-independent XOR fold of every successful payload (see the
    /// module docs). Two runs of the same seeded scenario over the same
    /// graph must report the same hash, cached or not.
    pub answer_hash: u64,
    /// End-to-end latency in nanoseconds; coordinated-omission-corrected
    /// (measured from the intended schedule) when a rate is set.
    pub latency: LogHistogram,
    /// Pure execution time in nanoseconds (excludes queueing and backoff).
    pub service_time: LogHistogram,
    /// Gather straggler penalty in nanoseconds, recorded per scattered
    /// operation (empty when nothing scattered).
    pub gather: LogHistogram,
    /// One report per phase, in run order; the run counters above are
    /// their exact fold.
    pub phases: Vec<PhaseReport>,
    /// Per-shard identity + counters snapshot at the end of the run.
    pub per_shard: Vec<ShardSnapshot>,
    /// Per-shard, per-replica measured service times (histogram + interval
    /// series, origin = run start), positionally parallel to `per_shard`.
    pub replica_series: Vec<Vec<ReplicaSeries>>,
}

/// The sparse JSON rows of an interval series.
fn intervals_json(series: &IntervalSeries) -> String {
    series
        .nonempty()
        .map(|(i, slot)| {
            format!(
                "{{\"i\": {}, \"count\": {}, \"ok\": {}, \"errors\": {}, \"p50\": {}, \
                 \"p99\": {}, \"max\": {}}}",
                i,
                slot.hist.count(),
                slot.ok,
                slot.errors,
                slot.hist.quantile(0.50),
                slot.hist.quantile(0.99),
                slot.hist.max()
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn hist_json(h: &LogHistogram) -> String {
    format!(
        "{{\"count\": {}, \"min\": {}, \"mean\": {:.1}, \"p50\": {}, \"p90\": {}, \
         \"p99\": {}, \"p999\": {}, \"max\": {}}}",
        h.count(),
        h.min(),
        h.mean(),
        h.quantile(0.50),
        h.quantile(0.90),
        h.quantile(0.99),
        h.quantile(0.999),
        h.max()
    )
}

impl StressReport {
    /// Completed operations per second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.ops as f64 / secs
        } else {
            0.0
        }
    }

    /// The report as a JSON document (parsable by [`crate::json::parse`]).
    pub fn to_json(&self, name: &str) -> String {
        let hist = hist_json;
        let empty_series: Vec<ReplicaSeries> = Vec::new();
        let per_shard = self
            .per_shard
            .iter()
            .enumerate()
            .map(|(si, s)| {
                let series = self.replica_series.get(si).unwrap_or(&empty_series);
                let replicas = s
                    .replicas
                    .iter()
                    .enumerate()
                    .map(|(ri, r)| {
                        let (service_ns, intervals) = match series.get(ri) {
                            Some(rs) => (hist(&rs.service), intervals_json(&rs.intervals)),
                            None => (hist(&LogHistogram::new()), String::new()),
                        };
                        format!(
                            "{{\"replica\": {}, \"completed\": {}, \"failed\": {}, \
                             \"queue_hwm\": {}, \"busy_ns\": {}, \"service_ns\": {}, \
                             \"intervals\": [{}]}}",
                            r.replica,
                            r.stats.completed,
                            r.stats.failed,
                            r.stats.queue_hwm,
                            r.stats.busy_ns,
                            service_ns,
                            intervals
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                // The shard's measured service times: the exact merge of its
                // replicas' histograms.
                let mut shard_service = LogHistogram::new();
                for rs in series {
                    shard_service.merge(&rs.service);
                }
                format!(
                    "{{\"shard\": {}, \"owned\": {}, \"completed\": {}, \"failed\": {}, \
                     \"rejects\": {}, \"early_drops\": {}, \"cache_hits\": {}, \
                     \"queue_hwm\": {}, \"busy_ns\": {}, \"service_ns\": {}, \
                     \"replicas\": [{}]}}",
                    s.shard,
                    s.owned,
                    s.stats.completed,
                    s.stats.failed,
                    s.stats.rejected,
                    s.stats.early_drops,
                    s.stats.cache_hits,
                    s.stats.queue_hwm,
                    s.stats.busy_ns,
                    hist(&shard_service),
                    replicas
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let phases = self
            .phases
            .iter()
            .map(|p| {
                format!(
                    "{{\"phase\": \"{}\", \"clients\": {}, \"rate\": {}, \"start_s\": {:.3}, \
                     \"elapsed_s\": {:.3}, \"ops\": {}, \"ok\": {}, \"errors\": {}, \
                     \"unsupported\": {}, \"timeouts\": {}, \"retries\": {}, \"routed\": {}, \
                     \"scattered\": {}, \"writes\": {}, \"write_errors\": {}, \
                     \"answer_hash\": \"{:016x}\", \"latency_ns\": {}, \"service_ns\": {}, \
                     \"gather_ns\": {}, \"intervals\": [{}]}}",
                    json_escape(&p.name),
                    p.clients,
                    p.rate.map_or("null".to_string(), |r| format!("{r:.1}")),
                    p.start_s,
                    p.elapsed.as_secs_f64(),
                    p.ops,
                    p.ok,
                    p.errors,
                    p.unsupported,
                    p.timeouts,
                    p.retries,
                    p.routed,
                    p.scattered,
                    p.writes,
                    p.write_errors,
                    p.answer_hash,
                    hist(&p.latency),
                    hist(&p.service_time),
                    hist(&p.gather),
                    intervals_json(&p.intervals)
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        // The answer hash is a string: the reader parses numbers as f64,
        // which cannot hold a full 64-bit hash exactly.
        let cache = format!(
            "{{\"hits\": {}, \"misses\": {}, \"insertions\": {}, \"evictions\": {}, \
             \"resident_bytes\": {}}}",
            self.cache_hits,
            self.cache_misses,
            self.cache_insertions,
            self.cache_evictions,
            self.cache_bytes
        );
        let epochs = format!(
            "{{\"epoch\": {}, \"swaps\": {}, \"accepted\": {}, \"applied\": {}, \
             \"noops\": {}, \"pending\": {}, \"swap_pause_ns\": {}, \"write_apply_ns\": {}, \
             \"freshness_lag_ns\": {}, \"write_accept_ns\": {}}}",
            self.epochs.stats.epoch,
            self.epochs.stats.swaps,
            self.epochs.stats.accepted,
            self.epochs.stats.applied,
            self.epochs.stats.noops,
            self.epochs.stats.pending,
            hist(&self.epochs.swap_pause),
            hist(&self.epochs.write_apply),
            hist(&self.epochs.freshness_lag),
            hist(&self.write_accept)
        );
        format!(
            "{{\n  \"name\": \"{}\",\n  \"mix\": \"{}\",\n  \"scenario\": \"{}\",\n  \
             \"seed\": {},\n  \"clients\": {},\n  \
             \"rate\": {},\n  \"burst\": {},\n  \"shards\": {},\n  \"replicas\": {},\n  \
             \"routing\": \"{}\",\n  \"interval_ms\": {},\n  \"elapsed_s\": {:.3},\n  \
             \"ops\": {},\n  \"ok\": {},\n  \"errors\": {},\n  \"unsupported\": {},\n  \
             \"timeouts\": {},\n  \"retries\": {},\n  \"routed\": {},\n  \"scattered\": {},\n  \
             \"rejects\": {},\n  \"early_drops\": {},\n  \"writes\": {},\n  \
             \"write_errors\": {},\n  \"throughput_ops_s\": {:.1},\n  \
             \"answer_hash\": \"{:016x}\",\n  \"cache\": {},\n  \"epochs\": {},\n  \
             \"latency_ns\": {},\n  \"service_ns\": {},\n  \"gather_ns\": {},\n  \
             \"phases\": [{}],\n  \"per_shard\": [{}]\n}}\n",
            json_escape(name),
            json_escape(&self.mix),
            json_escape(&self.mix),
            self.seed,
            self.clients,
            self.rate.map_or("null".to_string(), |r| format!("{r:.1}")),
            self.burst,
            self.shards,
            self.replicas,
            json_escape(&self.routing),
            self.interval_ns / 1_000_000,
            self.elapsed.as_secs_f64(),
            self.ops,
            self.ok,
            self.errors,
            self.unsupported,
            self.timeouts,
            self.retries,
            self.routed,
            self.scattered,
            self.rejects,
            self.early_drops,
            self.writes,
            self.write_errors,
            self.throughput(),
            self.answer_hash,
            cache,
            epochs,
            hist(&self.latency),
            hist(&self.service_time),
            hist(&self.gather),
            phases,
            per_shard
        )
    }

    /// The report as a human-readable markdown table pair.
    pub fn to_markdown(&self, name: &str) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        let mut out = String::new();
        out.push_str(&format!("# Stress run: {name}\n\n"));
        out.push_str(&format!(
            "scenario `{}`, seed {}, {} clients, rate {}, burst {}, {} shard{} × {} replica{} \
             ({} routing), {} ms intervals\n\n",
            self.mix,
            self.seed,
            self.clients,
            self.rate
                .map_or("unthrottled".to_string(), |r| format!("{r:.0}/s")),
            self.burst,
            self.shards,
            if self.shards == 1 { "" } else { "s" },
            self.replicas,
            if self.replicas == 1 { "" } else { "s" },
            self.routing,
            self.interval_ns / 1_000_000
        ));
        out.push_str("| metric | value |\n|---|---|\n");
        out.push_str(&format!("| elapsed | {:.2} s |\n", self.elapsed.as_secs_f64()));
        out.push_str(&format!("| operations | {} |\n", self.ops));
        out.push_str(&format!("| ok / errors | {} / {} |\n", self.ok, self.errors));
        out.push_str(&format!(
            "| unsupported / timeouts | {} / {} |\n",
            self.unsupported, self.timeouts
        ));
        out.push_str(&format!("| retries | {} |\n", self.retries));
        out.push_str(&format!(
            "| routed / scattered | {} / {} |\n",
            self.routed, self.scattered
        ));
        out.push_str(&format!(
            "| rejects / early drops | {} / {} |\n",
            self.rejects, self.early_drops
        ));
        out.push_str(&format!(
            "| writes / write errors | {} / {} |\n",
            self.writes, self.write_errors
        ));
        out.push_str(&format!(
            "| epoch / swaps | {} / {} |\n",
            self.epochs.stats.epoch, self.epochs.stats.swaps
        ));
        out.push_str(&format!(
            "| mutations applied / no-ops | {} / {} |\n",
            self.epochs.stats.applied, self.epochs.stats.noops
        ));
        out.push_str(&format!(
            "| cache hits / misses | {} / {} |\n",
            self.cache_hits, self.cache_misses
        ));
        out.push_str(&format!(
            "| cache insertions / evictions | {} / {} |\n",
            self.cache_insertions, self.cache_evictions
        ));
        out.push_str(&format!("| cache resident | {} B |\n", self.cache_bytes));
        out.push_str(&format!("| answer hash | `{:016x}` |\n", self.answer_hash));
        out.push_str(&format!("| throughput | {:.1} ops/s |\n\n", self.throughput()));
        out.push_str("| histogram (ms) | p50 | p90 | p99 | p99.9 | max |\n|---|---|---|---|---|---|\n");
        for (label, h) in [
            ("latency", &self.latency),
            ("service", &self.service_time),
            ("gather", &self.gather),
            ("swap pause", &self.epochs.swap_pause),
            ("write apply", &self.epochs.write_apply),
            ("freshness lag", &self.epochs.freshness_lag),
            ("write accept", &self.write_accept),
        ] {
            out.push_str(&format!(
                "| {} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} |\n",
                label,
                ms(h.quantile(0.50)),
                ms(h.quantile(0.90)),
                ms(h.quantile(0.99)),
                ms(h.quantile(0.999)),
                ms(h.max())
            ));
        }
        out.push_str(
            "\n| phase | clients | rate | start s | elapsed s | ops | ok | errors | writes | \
             intervals | p50 ms | p99 ms |\n|---|---|---|---|---|---|---|---|---|---|---|---|\n",
        );
        for p in &self.phases {
            out.push_str(&format!(
                "| {} | {} | {} | {:.2} | {:.2} | {} | {} | {} | {} | {} | {:.3} | {:.3} |\n",
                p.name,
                p.clients,
                p.rate.map_or("—".to_string(), |r| format!("{r:.0}/s")),
                p.start_s,
                p.elapsed.as_secs_f64(),
                p.ops,
                p.ok,
                p.errors,
                p.writes,
                p.intervals.completed_intervals(),
                ms(p.latency.quantile(0.50)),
                ms(p.latency.quantile(0.99))
            ));
        }
        if !self.per_shard.is_empty() {
            out.push_str(
                "\n| shard | owned | completed | failed | rejects | early drops | cache hits | \
                 queue hwm | busy ms |\n|---|---|---|---|---|---|---|---|---|\n",
            );
            for s in &self.per_shard {
                out.push_str(&format!(
                    "| {} | {} | {} | {} | {} | {} | {} | {} | {:.3} |\n",
                    s.shard,
                    s.owned,
                    s.stats.completed,
                    s.stats.failed,
                    s.stats.rejected,
                    s.stats.early_drops,
                    s.stats.cache_hits,
                    s.stats.queue_hwm,
                    ms(s.stats.busy_ns)
                ));
            }
            out.push_str(
                "\n| shard | replica | completed | failed | queue hwm | busy ms | \
                 service p50 ms | service p99 ms |\n|---|---|---|---|---|---|---|---|\n",
            );
            for (si, s) in self.per_shard.iter().enumerate() {
                for (ri, r) in s.replicas.iter().enumerate() {
                    let series = self
                        .replica_series
                        .get(si)
                        .and_then(|shard| shard.get(ri));
                    let (p50, p99) = series.map_or((0, 0), |rs| {
                        (rs.service.quantile(0.50), rs.service.quantile(0.99))
                    });
                    out.push_str(&format!(
                        "| {} | {} | {} | {} | {} | {:.3} | {:.4} | {:.4} |\n",
                        s.shard,
                        r.replica,
                        r.stats.completed,
                        r.stats.failed,
                        r.stats.queue_hwm,
                        ms(r.stats.busy_ns),
                        ms(p50),
                        ms(p99)
                    ));
                }
            }
        }
        out
    }
}

struct ClientStats {
    ops: u64,
    ok: u64,
    errors: u64,
    unsupported: u64,
    timeouts: u64,
    retries: u64,
    routed: u64,
    scattered: u64,
    writes: u64,
    write_errors: u64,
    answer_hash: u64,
    latency: LogHistogram,
    service_time: LogHistogram,
    gather: LogHistogram,
    write_accept: LogHistogram,
    /// Latency samples bucketed by completion time relative to the phase
    /// start — striped per client, merged exactly at phase end.
    intervals: IntervalSeries,
}

impl ClientStats {
    fn new(interval_ns: u64) -> ClientStats {
        ClientStats {
            ops: 0,
            ok: 0,
            errors: 0,
            unsupported: 0,
            timeouts: 0,
            retries: 0,
            routed: 0,
            scattered: 0,
            writes: 0,
            write_errors: 0,
            answer_hash: 0,
            latency: LogHistogram::new(),
            service_time: LogHistogram::new(),
            gather: LogHistogram::new(),
            write_accept: LogHistogram::new(),
            intervals: IntervalSeries::new(interval_ns),
        }
    }

    fn fold(&mut self, other: &ClientStats) {
        self.ops += other.ops;
        self.ok += other.ok;
        self.errors += other.errors;
        self.unsupported += other.unsupported;
        self.timeouts += other.timeouts;
        self.retries += other.retries;
        self.routed += other.routed;
        self.scattered += other.scattered;
        self.writes += other.writes;
        self.write_errors += other.write_errors;
        self.answer_hash ^= other.answer_hash;
        self.latency.merge(&other.latency);
        self.service_time.merge(&other.service_time);
        self.gather.merge(&other.gather);
        self.write_accept.merge(&other.write_accept);
        self.intervals.merge(&other.intervals);
    }
}

/// Runs the legacy preset workload described by `cfg` against `target` —
/// by desugaring it into a one-phase [`Scenario`] (see
/// [`Scenario::from_legacy`]) and running that. The desugared op stream is
/// bit-identical to the historical driver's, so reports keep their exact
/// counts and answer hashes.
pub fn run<T: StressTarget>(target: &T, mix: &Mix, cfg: &DriverConfig) -> StressReport {
    run_scenario(target, &Scenario::from_legacy(mix, cfg))
}

/// Runs a resolved scenario against `target`: each phase spawns its client
/// threads, drives its compiled mix under its own pacing and stop
/// criteria, and the run report folds the phase reports exactly.
pub fn run_scenario<T: StressTarget>(target: &T, scenario: &Scenario) -> StressReport {
    assert!(!scenario.phases.is_empty(), "scenario has no phases");
    let interval_ns = (scenario.interval.as_nanos() as u64).max(1);
    // Counter baseline: the same service process may host several runs, so
    // the report subtracts what was already on the clocks (see module docs).
    // The writer baseline also *resets* the freshness histograms (they
    // merge but cannot subtract), scoping them to this run too; the
    // service-log reset scopes the per-replica series the same way.
    let baseline = target.shard_snapshots();
    let writer_baseline = target.writer_baseline();
    // Mutation stream span: the initial vertex-id space (every vertex is
    // owned by exactly one shard, so the owned counts sum to n).
    let base_n = baseline.iter().map(|s| s.owned).sum::<usize>().max(2);
    let run_start = Instant::now();
    target.reset_service_log(run_start, interval_ns);

    let mut phases: Vec<PhaseReport> = Vec::with_capacity(scenario.phases.len());
    for phase in &scenario.phases {
        assert!(phase.clients >= 1, "phase needs at least one client");
        let next_op = AtomicU64::new(0);
        let bucket = phase
            .rate
            .map(|r| Mutex::new(TokenBucket::new(r, phase.burst.max(1))));
        let pace_step = phase.rate.map(|r| ((1e9 / r).max(1.0)) as u64);
        let phase_start = Instant::now();
        let end = phase.duration.map(|d| phase_start + d);
        let merged: Vec<ClientStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..phase.clients)
                .map(|_| {
                    let next_op = &next_op;
                    let bucket = &bucket;
                    scope.spawn(move || {
                        client_loop(
                            target,
                            phase,
                            scenario.timeout,
                            interval_ns,
                            base_n,
                            next_op,
                            bucket,
                            pace_step,
                            phase_start,
                            end,
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let elapsed = phase_start.elapsed();
        let mut total = ClientStats::new(interval_ns);
        for c in &merged {
            total.fold(c);
        }
        phases.push(PhaseReport {
            name: phase.name.clone(),
            clients: phase.clients,
            rate: phase.rate,
            start_s: phase_start.duration_since(run_start).as_secs_f64(),
            elapsed,
            ops: total.ops,
            ok: total.ok,
            errors: total.errors,
            unsupported: total.unsupported,
            timeouts: total.timeouts,
            retries: total.retries,
            routed: total.routed,
            scattered: total.scattered,
            writes: total.writes,
            write_errors: total.write_errors,
            answer_hash: total.answer_hash,
            latency: total.latency,
            service_time: total.service_time,
            gather: total.gather,
            write_accept: total.write_accept,
            intervals: total.intervals,
        });
    }

    let elapsed = run_start.elapsed();
    // The run counters are the exact fold of the phase counters.
    let mut total = ClientStats::new(interval_ns);
    for p in &phases {
        total.ops += p.ops;
        total.ok += p.ok;
        total.errors += p.errors;
        total.unsupported += p.unsupported;
        total.timeouts += p.timeouts;
        total.retries += p.retries;
        total.routed += p.routed;
        total.scattered += p.scattered;
        total.writes += p.writes;
        total.write_errors += p.write_errors;
        total.answer_hash ^= p.answer_hash;
        total.latency.merge(&p.latency);
        total.service_time.merge(&p.service_time);
        total.gather.merge(&p.gather);
        total.write_accept.merge(&p.write_accept);
    }
    let per_shard: Vec<ShardSnapshot> = target
        .shard_snapshots()
        .into_iter()
        .zip(&baseline)
        .map(|(now, before)| ShardSnapshot {
            shard: now.shard,
            owned: now.owned,
            stats: now.stats.delta_since(&before.stats),
            // Replica sets are fixed for the life of a service, so the
            // baseline zips by position.
            replicas: now
                .replicas
                .iter()
                .zip(&before.replicas)
                .map(|(rn, rb)| ReplicaSnapshot {
                    replica: rn.replica,
                    stats: rn.stats.delta_since(&rb.stats),
                })
                .collect(),
        })
        .collect();
    let rejects = per_shard.iter().map(|s| s.stats.rejected).sum();
    let early_drops = per_shard.iter().map(|s| s.stats.early_drops).sum();
    // Writer counters scoped to this run; the histograms were reset at the
    // baseline, so they already are.
    let mut epochs = target.writer_report();
    epochs.stats = epochs.stats.delta_since(&writer_baseline);
    StressReport {
        mix: scenario.name.clone(),
        seed: scenario.seed,
        clients: scenario.phases.iter().map(|p| p.clients).max().unwrap_or(1),
        rate: scenario.phases[0].rate,
        burst: scenario.phases[0].burst,
        shards: target.num_shards(),
        replicas: target.replicas_per_shard(),
        routing: target.routing_label().to_string(),
        interval_ns,
        elapsed,
        ops: total.ops,
        ok: total.ok,
        errors: total.errors,
        unsupported: total.unsupported,
        timeouts: total.timeouts,
        retries: total.retries,
        routed: total.routed,
        scattered: total.scattered,
        rejects,
        early_drops,
        writes: total.writes,
        write_errors: total.write_errors,
        epochs,
        write_accept: total.write_accept,
        cache_hits: per_shard.iter().map(|s| s.stats.cache_hits).sum(),
        cache_misses: per_shard.iter().map(|s| s.stats.cache_misses).sum(),
        cache_insertions: per_shard.iter().map(|s| s.stats.cache_insertions).sum(),
        cache_evictions: per_shard.iter().map(|s| s.stats.cache_evictions).sum(),
        cache_bytes: per_shard.iter().map(|s| s.stats.cache_bytes).sum(),
        answer_hash: total.answer_hash,
        latency: total.latency,
        service_time: total.service_time,
        gather: total.gather,
        phases,
        per_shard,
        replica_series: target.replica_series(),
    }
}

#[allow(clippy::too_many_arguments)]
fn client_loop<T: StressTarget>(
    target: &T,
    phase: &Phase,
    timeout: Duration,
    interval_ns: u64,
    base_n: usize,
    next_op: &AtomicU64,
    bucket: &Option<Mutex<TokenBucket>>,
    pace_step: Option<u64>,
    start: Instant,
    end: Option<Instant>,
) -> ClientStats {
    let mut stats = ClientStats::new(interval_ns);
    loop {
        if end.is_some_and(|e| Instant::now() >= e) {
            break;
        }
        let i = next_op.fetch_add(1, Ordering::Relaxed);
        if phase.ops_limit.is_some_and(|cap| i >= cap) {
            break;
        }
        // Pacing: wait for a token; give up (and end the phase) rather than
        // issue an operation past the configured duration.
        if let Some(bucket) = bucket {
            let mut gave_up = false;
            loop {
                let now = Instant::now();
                if end.is_some_and(|e| now >= e) {
                    gave_up = true;
                    break;
                }
                let now_ns = now.duration_since(start).as_nanos() as u64;
                // Bind the decision first: matching on the lock expression
                // directly would keep the MutexGuard temporary alive across
                // the sleep, making every other client block on the bucket
                // for the whole pause.
                let decision = bucket.lock().unwrap().try_acquire(now_ns);
                match decision {
                    Ok(()) => break,
                    Err(wait_ns) => {
                        let mut sleep = Duration::from_nanos(wait_ns);
                        if let Some(e) = end {
                            sleep = sleep.min(e.saturating_duration_since(now));
                        }
                        std::thread::sleep(sleep);
                    }
                }
            }
            if gave_up {
                break;
            }
        }
        // Write decision: a pure function of (mutation_seed, index), so
        // the read/write interleaving replays exactly. Write indices are
        // consumed from the shared stream but recorded apart from the read
        // accounting — with no mutate weight the loop below is bit-identical
        // to a run without any write path.
        if phase.mix.is_write(phase.mutation_seed, i) {
            let t0 = Instant::now();
            match target.submit_mutation(mutation_op(phase.mutation_seed, i, base_n)) {
                Ok(_) => {
                    stats.writes += 1;
                    stats.write_accept.record(t0.elapsed().as_nanos() as u64);
                }
                Err(SubmitError::Closed) => break,
                Err(_) => stats.write_errors += 1,
            }
            continue;
        }
        // Intended start on the fixed schedule (coordinated-omission
        // correction); actual submit time when unthrottled.
        let intended = match pace_step {
            Some(step) => start + Duration::from_nanos(i.saturating_mul(step)),
            None => Instant::now(),
        };
        let req = QueryRequest::new(i, phase.mix.op(phase.seed, i))
            .with_seed(mix3(phase.seed, i, REQ_STREAM))
            .with_timeout(timeout);
        let ticket = match target.submit_op(req) {
            Ok(t) => t,
            Err(_) => break,
        };
        let resp = ticket.wait();
        let done = Instant::now();
        stats.ops += 1;
        stats.retries += u64::from(resp.retries());
        match resp.route {
            Route::Direct => {}
            Route::Routed { .. } => stats.routed += 1,
            Route::Scattered { .. } => {
                stats.scattered += 1;
                stats.gather.record(resp.gather_wait.as_nanos() as u64);
            }
        }
        let latency_ns = done.saturating_duration_since(intended).as_nanos() as u64;
        stats.latency.record(latency_ns);
        // The same sample, bucketed by when it completed within the phase —
        // slot sums fold exactly back to the latency histogram.
        let at_ns = done.saturating_duration_since(start).as_nanos() as u64;
        stats.intervals.record(at_ns, latency_ns, resp.result.is_ok());
        stats.service_time.record(resp.service_time.as_nanos() as u64);
        match &resp.result {
            Ok(out) => {
                stats.ok += 1;
                stats.answer_hash ^= output_hash(resp.id, out);
            }
            Err(e) => {
                stats.errors += 1;
                match e {
                    QueryError::Unsupported(_) => stats.unsupported += 1,
                    QueryError::Timeout { .. } => stats.timeouts += 1,
                    _ => {}
                }
            }
        }
    }
    stats
}
