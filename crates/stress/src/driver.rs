//! The load driver: client threads issuing a deterministic, seeded
//! operation mix against a [`StressTarget`] (the single-instance
//! [`GraphService`](crate::service::GraphService) or the sharded service),
//! paced by a token bucket (or unthrottled), recording latencies into
//! mergeable log-bucketed histograms.
//!
//! **Coordinated omission.** When a rate is configured, each operation has
//! an *intended* start time on the fixed schedule `i · interval` and its
//! latency is measured from that intended time — so a stalled server is
//! charged for the operations that queued up behind the stall, not silently
//! excused. The separate service-time histogram measures execution only.
//!
//! **Sharding visibility.** Clients count routed-vs-scattered dispatches
//! from each response's [`Route`] and record the gather straggler penalty
//! of scattered operations; at the end of the run the target's per-shard
//! snapshots contribute occupancy (queue high-water marks), rejects, early
//! drops, and result-cache hit counts to the report — plus one row per
//! replica core (completed, queue high-water mark, executor busy time), so
//! a replicated hot shard's load split is visible directly.
//!
//! **Run scoping.** Service counters are monotone for the process, but one
//! process can host several driver runs (the bin's `--repeat`, the cache
//! warm/hot comparison in `scripts/verify.sh`). The driver snapshots the
//! per-shard counters before spawning clients and reports the *delta*, so
//! every report describes exactly its own run; gauges (queue high-water
//! mark, cache resident bytes) keep their end-of-run values.
//!
//! **Answer hashing.** Each client folds every successful payload into an
//! order-independent 64-bit `answer_hash` (XOR of per-operation mixes), so
//! two runs of the same seeded mix can be checked for *bit-identical
//! answers* — not just matching counts — from the reports alone. This is
//! the gate that proves cached answers equal freshly computed ones.

use crate::epoch::{mutation_op, WriterReport};
use crate::mix::Mix;
use crate::rate::TokenBucket;
use crate::request::{QueryError, QueryOutput, QueryRequest, Route};
use crate::router::StressTarget;
use crate::service::{ReplicaSnapshot, ShardSnapshot, SubmitError};
use vcgp_core::service::Partial;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use vcgp_graph::rng::mix3;
use vcgp_testkit::bench::json_escape;
use vcgp_testkit::LogHistogram;

/// Domain separator for per-request workload seeds.
const REQ_STREAM: u64 = 0x5245_5153; // "REQS"

/// Domain separator for the answer-hash fold.
const ANS_STREAM: u64 = 0x414E_5348; // "ANSH"

/// Domain separator for the read-vs-write decision per stream index.
const WRITE_STREAM: u64 = 0x5752_4454; // "WRDT"

/// Hashes one successful payload, mixed with the operation id so identical
/// payloads at different stream positions stay distinguishable. XOR-folding
/// these per-operation mixes is order-independent, so the aggregate hash is
/// stable no matter how operations interleave across client threads.
fn output_hash(id: u64, out: &QueryOutput) -> u64 {
    let payload = match out {
        QueryOutput::Workload { answer, .. } => mix3(1, *answer, 0),
        QueryOutput::WorkloadPartial { partial, .. } => match *partial {
            Partial::Sum(v) => mix3(2, v, 0),
            Partial::Max(v) => mix3(3, v, 0),
            Partial::ArgMax { score, vertex } => mix3(4, mix3(score.to_bits(), vertex, 0), 0),
        },
        QueryOutput::Degree(d) => mix3(5, *d as u64, 0),
        // Neighbor lists are order-significant (CSR order), so chain rather
        // than fold commutatively.
        QueryOutput::Neighbors(ns) => ns
            .iter()
            .fold(mix3(6, ns.len() as u64, 0), |acc, &v| {
                mix3(acc, u64::from(v), 0)
            }),
        QueryOutput::Slept => mix3(7, 0, 0),
    };
    mix3(id, payload, ANS_STREAM)
}

/// Driver settings.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Concurrent client threads (each submits and waits synchronously).
    pub clients: usize,
    /// Wall-clock run length.
    pub duration: Duration,
    /// Optional hard cap on issued operations (useful for exact-count
    /// deterministic runs in tests).
    pub ops_limit: Option<u64>,
    /// Target operation rate in ops/s; `None` = unthrottled max throughput.
    pub rate: Option<f64>,
    /// Token-bucket burst allowance when paced.
    pub burst: u32,
    /// Seed of the operation stream.
    pub seed: u64,
    /// Per-attempt timeout stamped on every request.
    pub timeout: Duration,
    /// Fraction of stream indices that issue a mutation instead of a query
    /// (0.0 = pure reads — bit-identical to a run without any write path).
    /// The decision is a pure function of `(mutation_seed, index)`, so a
    /// fixed seed pair reproduces the exact read/write interleaving.
    pub write_ratio: f64,
    /// Seed of the mutation stream (both the write decision and the
    /// mutation drawn; independent of the query-mix seed so read and write
    /// streams can be varied separately).
    pub mutation_seed: u64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            clients: 4,
            duration: Duration::from_secs(2),
            ops_limit: None,
            rate: None,
            burst: 1,
            seed: 7,
            timeout: Duration::from_secs(5),
            write_ratio: 0.0,
            mutation_seed: 11,
        }
    }
}

/// Aggregated results of one driver run.
#[derive(Debug, Clone)]
pub struct StressReport {
    /// Mix preset name.
    pub mix: String,
    /// Operation-stream seed.
    pub seed: u64,
    /// Client thread count.
    pub clients: usize,
    /// Configured rate (`None` = unthrottled).
    pub rate: Option<f64>,
    /// Burst allowance.
    pub burst: u32,
    /// Shards of the target service (1 = unsharded).
    pub shards: usize,
    /// Replica cores per shard (1 = unreplicated).
    pub replicas: usize,
    /// Replica-routing policy label (`round-robin` / `least-loaded`).
    pub routing: String,
    /// Wall-clock time actually spent.
    pub elapsed: Duration,
    /// Operations completed (ok + errored).
    pub ops: u64,
    /// Operations that returned a payload.
    pub ok: u64,
    /// Operations that returned an error.
    pub errors: u64,
    /// Errors that were precondition rejections (subset of `errors`).
    pub unsupported: u64,
    /// Operations that exhausted their attempts (subset of `errors`).
    pub timeouts: u64,
    /// Retry attempts beyond each operation's first.
    pub retries: u64,
    /// Operations owner-routed to a single shard (or run whole on the
    /// primary shard).
    pub routed: u64,
    /// Operations scattered to every shard and gather-merged.
    pub scattered: u64,
    /// Requests shed at submission under the reject queue policy (from the
    /// service's counters).
    pub rejects: u64,
    /// Requests dropped at dequeue with an already-expired deadline (from
    /// the service's counters; disjoint from `timeouts`).
    pub early_drops: u64,
    /// Result-cache lookups answered without running the engine, summed
    /// across shards (this run only).
    pub cache_hits: u64,
    /// Result-cache misses on cacheable requests, summed across shards
    /// (this run only).
    pub cache_misses: u64,
    /// Result-cache insertions, summed across shards (this run only).
    pub cache_insertions: u64,
    /// Result-cache evictions at capacity, summed across shards (this run
    /// only).
    pub cache_evictions: u64,
    /// Bytes resident across every shard's result cache at the end of the
    /// run (a gauge — not scoped to the run).
    pub cache_bytes: u64,
    /// Mutations accepted into the write buffer by this run's clients
    /// (write operations are counted here, never in `ops`, so the read
    /// stream's accounting — and `answer_hash` — is write-ratio-0
    /// identical to a frozen run).
    pub writes: u64,
    /// Mutations refused at submission (read-only service, or closed).
    pub write_errors: u64,
    /// Writer-side counters and freshness histograms, scoped to this run
    /// (the driver takes a writer baseline next to the query-counter
    /// baseline, so `--repeat` passes don't double-count mutations). All
    /// zeros/empty for a read-only target.
    pub epochs: WriterReport,
    /// Client-observed accept latency of each successful mutation
    /// submission in nanoseconds (the write-side backpressure signal:
    /// rises when the write buffer fills faster than epochs install).
    pub write_accept: LogHistogram,
    /// Order-independent XOR fold of every successful payload (see the
    /// module docs). Two runs of the same seeded mix over the same graph
    /// must report the same hash, cached or not.
    pub answer_hash: u64,
    /// End-to-end latency in nanoseconds; coordinated-omission-corrected
    /// (measured from the intended schedule) when a rate is set.
    pub latency: LogHistogram,
    /// Pure execution time in nanoseconds (excludes queueing and backoff).
    pub service_time: LogHistogram,
    /// Gather straggler penalty in nanoseconds, recorded per scattered
    /// operation (empty when nothing scattered).
    pub gather: LogHistogram,
    /// Per-shard identity + counters snapshot at the end of the run.
    pub per_shard: Vec<ShardSnapshot>,
}

impl StressReport {
    /// Completed operations per second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.ops as f64 / secs
        } else {
            0.0
        }
    }

    /// The report as a JSON document (parsable by [`crate::json::parse`]).
    pub fn to_json(&self, name: &str) -> String {
        let hist = |h: &LogHistogram| {
            format!(
                "{{\"count\": {}, \"min\": {}, \"mean\": {:.1}, \"p50\": {}, \"p90\": {}, \
                 \"p99\": {}, \"p999\": {}, \"max\": {}}}",
                h.count(),
                h.min(),
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
                h.quantile(0.999),
                h.max()
            )
        };
        let per_shard = self
            .per_shard
            .iter()
            .map(|s| {
                let replicas = s
                    .replicas
                    .iter()
                    .map(|r| {
                        format!(
                            "{{\"replica\": {}, \"completed\": {}, \"failed\": {}, \
                             \"queue_hwm\": {}, \"busy_ns\": {}}}",
                            r.replica,
                            r.stats.completed,
                            r.stats.failed,
                            r.stats.queue_hwm,
                            r.stats.busy_ns
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "{{\"shard\": {}, \"owned\": {}, \"completed\": {}, \"failed\": {}, \
                     \"rejects\": {}, \"early_drops\": {}, \"cache_hits\": {}, \
                     \"queue_hwm\": {}, \"busy_ns\": {}, \"replicas\": [{}]}}",
                    s.shard,
                    s.owned,
                    s.stats.completed,
                    s.stats.failed,
                    s.stats.rejected,
                    s.stats.early_drops,
                    s.stats.cache_hits,
                    s.stats.queue_hwm,
                    s.stats.busy_ns,
                    replicas
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        // The answer hash is a string: the reader parses numbers as f64,
        // which cannot hold a full 64-bit hash exactly.
        let cache = format!(
            "{{\"hits\": {}, \"misses\": {}, \"insertions\": {}, \"evictions\": {}, \
             \"resident_bytes\": {}}}",
            self.cache_hits,
            self.cache_misses,
            self.cache_insertions,
            self.cache_evictions,
            self.cache_bytes
        );
        let epochs = format!(
            "{{\"epoch\": {}, \"swaps\": {}, \"accepted\": {}, \"applied\": {}, \
             \"noops\": {}, \"pending\": {}, \"swap_pause_ns\": {}, \"write_apply_ns\": {}, \
             \"freshness_lag_ns\": {}, \"write_accept_ns\": {}}}",
            self.epochs.stats.epoch,
            self.epochs.stats.swaps,
            self.epochs.stats.accepted,
            self.epochs.stats.applied,
            self.epochs.stats.noops,
            self.epochs.stats.pending,
            hist(&self.epochs.swap_pause),
            hist(&self.epochs.write_apply),
            hist(&self.epochs.freshness_lag),
            hist(&self.write_accept)
        );
        format!(
            "{{\n  \"name\": \"{}\",\n  \"mix\": \"{}\",\n  \"seed\": {},\n  \"clients\": {},\n  \
             \"rate\": {},\n  \"burst\": {},\n  \"shards\": {},\n  \"replicas\": {},\n  \
             \"routing\": \"{}\",\n  \"elapsed_s\": {:.3},\n  \
             \"ops\": {},\n  \"ok\": {},\n  \"errors\": {},\n  \"unsupported\": {},\n  \
             \"timeouts\": {},\n  \"retries\": {},\n  \"routed\": {},\n  \"scattered\": {},\n  \
             \"rejects\": {},\n  \"early_drops\": {},\n  \"writes\": {},\n  \
             \"write_errors\": {},\n  \"throughput_ops_s\": {:.1},\n  \
             \"answer_hash\": \"{:016x}\",\n  \"cache\": {},\n  \"epochs\": {},\n  \
             \"latency_ns\": {},\n  \"service_ns\": {},\n  \"gather_ns\": {},\n  \
             \"per_shard\": [{}]\n}}\n",
            json_escape(name),
            json_escape(&self.mix),
            self.seed,
            self.clients,
            self.rate.map_or("null".to_string(), |r| format!("{r:.1}")),
            self.burst,
            self.shards,
            self.replicas,
            json_escape(&self.routing),
            self.elapsed.as_secs_f64(),
            self.ops,
            self.ok,
            self.errors,
            self.unsupported,
            self.timeouts,
            self.retries,
            self.routed,
            self.scattered,
            self.rejects,
            self.early_drops,
            self.writes,
            self.write_errors,
            self.throughput(),
            self.answer_hash,
            cache,
            epochs,
            hist(&self.latency),
            hist(&self.service_time),
            hist(&self.gather),
            per_shard
        )
    }

    /// The report as a human-readable markdown table pair.
    pub fn to_markdown(&self, name: &str) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        let mut out = String::new();
        out.push_str(&format!("# Stress run: {name}\n\n"));
        out.push_str(&format!(
            "mix `{}`, seed {}, {} clients, rate {}, burst {}, {} shard{} × {} replica{} \
             ({} routing)\n\n",
            self.mix,
            self.seed,
            self.clients,
            self.rate
                .map_or("unthrottled".to_string(), |r| format!("{r:.0}/s")),
            self.burst,
            self.shards,
            if self.shards == 1 { "" } else { "s" },
            self.replicas,
            if self.replicas == 1 { "" } else { "s" },
            self.routing
        ));
        out.push_str("| metric | value |\n|---|---|\n");
        out.push_str(&format!("| elapsed | {:.2} s |\n", self.elapsed.as_secs_f64()));
        out.push_str(&format!("| operations | {} |\n", self.ops));
        out.push_str(&format!("| ok / errors | {} / {} |\n", self.ok, self.errors));
        out.push_str(&format!(
            "| unsupported / timeouts | {} / {} |\n",
            self.unsupported, self.timeouts
        ));
        out.push_str(&format!("| retries | {} |\n", self.retries));
        out.push_str(&format!(
            "| routed / scattered | {} / {} |\n",
            self.routed, self.scattered
        ));
        out.push_str(&format!(
            "| rejects / early drops | {} / {} |\n",
            self.rejects, self.early_drops
        ));
        out.push_str(&format!(
            "| writes / write errors | {} / {} |\n",
            self.writes, self.write_errors
        ));
        out.push_str(&format!(
            "| epoch / swaps | {} / {} |\n",
            self.epochs.stats.epoch, self.epochs.stats.swaps
        ));
        out.push_str(&format!(
            "| mutations applied / no-ops | {} / {} |\n",
            self.epochs.stats.applied, self.epochs.stats.noops
        ));
        out.push_str(&format!(
            "| cache hits / misses | {} / {} |\n",
            self.cache_hits, self.cache_misses
        ));
        out.push_str(&format!(
            "| cache insertions / evictions | {} / {} |\n",
            self.cache_insertions, self.cache_evictions
        ));
        out.push_str(&format!("| cache resident | {} B |\n", self.cache_bytes));
        out.push_str(&format!("| answer hash | `{:016x}` |\n", self.answer_hash));
        out.push_str(&format!("| throughput | {:.1} ops/s |\n\n", self.throughput()));
        out.push_str("| histogram (ms) | p50 | p90 | p99 | p99.9 | max |\n|---|---|---|---|---|---|\n");
        for (label, h) in [
            ("latency", &self.latency),
            ("service", &self.service_time),
            ("gather", &self.gather),
            ("swap pause", &self.epochs.swap_pause),
            ("write apply", &self.epochs.write_apply),
            ("freshness lag", &self.epochs.freshness_lag),
            ("write accept", &self.write_accept),
        ] {
            out.push_str(&format!(
                "| {} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} |\n",
                label,
                ms(h.quantile(0.50)),
                ms(h.quantile(0.90)),
                ms(h.quantile(0.99)),
                ms(h.quantile(0.999)),
                ms(h.max())
            ));
        }
        if !self.per_shard.is_empty() {
            out.push_str(
                "\n| shard | owned | completed | failed | rejects | early drops | cache hits | \
                 queue hwm | busy ms |\n|---|---|---|---|---|---|---|---|---|\n",
            );
            for s in &self.per_shard {
                out.push_str(&format!(
                    "| {} | {} | {} | {} | {} | {} | {} | {} | {:.3} |\n",
                    s.shard,
                    s.owned,
                    s.stats.completed,
                    s.stats.failed,
                    s.stats.rejected,
                    s.stats.early_drops,
                    s.stats.cache_hits,
                    s.stats.queue_hwm,
                    ms(s.stats.busy_ns)
                ));
            }
            out.push_str(
                "\n| shard | replica | completed | failed | queue hwm | busy ms | \
                 mean service ms |\n|---|---|---|---|---|---|---|\n",
            );
            for s in &self.per_shard {
                for r in &s.replicas {
                    let mean = if r.stats.completed > 0 {
                        r.stats.busy_ns as f64 / r.stats.completed as f64 / 1e6
                    } else {
                        0.0
                    };
                    out.push_str(&format!(
                        "| {} | {} | {} | {} | {} | {:.3} | {:.4} |\n",
                        s.shard,
                        r.replica,
                        r.stats.completed,
                        r.stats.failed,
                        r.stats.queue_hwm,
                        ms(r.stats.busy_ns),
                        mean
                    ));
                }
            }
        }
        out
    }
}

#[derive(Default)]
struct ClientStats {
    ops: u64,
    ok: u64,
    errors: u64,
    unsupported: u64,
    timeouts: u64,
    retries: u64,
    routed: u64,
    scattered: u64,
    writes: u64,
    write_errors: u64,
    answer_hash: u64,
    latency: LogHistogram,
    service_time: LogHistogram,
    gather: LogHistogram,
    write_accept: LogHistogram,
}

/// Runs the workload described by `cfg` against `target` and aggregates
/// every client's measurements plus the target's per-shard counters.
pub fn run<T: StressTarget>(target: &T, mix: &Mix, cfg: &DriverConfig) -> StressReport {
    assert!(cfg.clients >= 1, "need at least one client");
    let next_op = AtomicU64::new(0);
    // Counter baseline: the same service process may host several runs, so
    // the report subtracts what was already on the clocks (see module docs).
    // The writer baseline also *resets* the freshness histograms (they
    // merge but cannot subtract), scoping them to this run too.
    let baseline = target.shard_snapshots();
    let writer_baseline = target.writer_baseline();
    // Mutation stream span: the initial vertex-id space (every vertex is
    // owned by exactly one shard, so the owned counts sum to n).
    let base_n = baseline.iter().map(|s| s.owned).sum::<usize>().max(2);
    let bucket = cfg
        .rate
        .map(|r| Mutex::new(TokenBucket::new(r, cfg.burst.max(1))));
    let interval_ns = cfg.rate.map(|r| ((1e9 / r).max(1.0)) as u64);
    let start = Instant::now();
    let end = start + cfg.duration;

    let merged: Vec<ClientStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|_| {
                let next_op = &next_op;
                let bucket = &bucket;
                scope.spawn(move || {
                    client_loop(target, mix, cfg, base_n, next_op, bucket, interval_ns, start, end)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let elapsed = start.elapsed();
    let mut total = ClientStats::default();
    for c in merged {
        total.ops += c.ops;
        total.ok += c.ok;
        total.errors += c.errors;
        total.unsupported += c.unsupported;
        total.timeouts += c.timeouts;
        total.retries += c.retries;
        total.routed += c.routed;
        total.scattered += c.scattered;
        total.writes += c.writes;
        total.write_errors += c.write_errors;
        total.answer_hash ^= c.answer_hash;
        total.latency.merge(&c.latency);
        total.service_time.merge(&c.service_time);
        total.gather.merge(&c.gather);
        total.write_accept.merge(&c.write_accept);
    }
    let per_shard: Vec<ShardSnapshot> = target
        .shard_snapshots()
        .into_iter()
        .zip(&baseline)
        .map(|(now, before)| ShardSnapshot {
            shard: now.shard,
            owned: now.owned,
            stats: now.stats.delta_since(&before.stats),
            // Replica sets are fixed for the life of a service, so the
            // baseline zips by position.
            replicas: now
                .replicas
                .iter()
                .zip(&before.replicas)
                .map(|(rn, rb)| ReplicaSnapshot {
                    replica: rn.replica,
                    stats: rn.stats.delta_since(&rb.stats),
                })
                .collect(),
        })
        .collect();
    let rejects = per_shard.iter().map(|s| s.stats.rejected).sum();
    let early_drops = per_shard.iter().map(|s| s.stats.early_drops).sum();
    // Writer counters scoped to this run; the histograms were reset at the
    // baseline, so they already are.
    let mut epochs = target.writer_report();
    epochs.stats = epochs.stats.delta_since(&writer_baseline);
    StressReport {
        mix: mix.name().to_string(),
        seed: cfg.seed,
        clients: cfg.clients,
        rate: cfg.rate,
        burst: cfg.burst,
        shards: target.num_shards(),
        replicas: target.replicas_per_shard(),
        routing: target.routing_label().to_string(),
        elapsed,
        ops: total.ops,
        ok: total.ok,
        errors: total.errors,
        unsupported: total.unsupported,
        timeouts: total.timeouts,
        retries: total.retries,
        routed: total.routed,
        scattered: total.scattered,
        rejects,
        early_drops,
        writes: total.writes,
        write_errors: total.write_errors,
        epochs,
        write_accept: total.write_accept,
        cache_hits: per_shard.iter().map(|s| s.stats.cache_hits).sum(),
        cache_misses: per_shard.iter().map(|s| s.stats.cache_misses).sum(),
        cache_insertions: per_shard.iter().map(|s| s.stats.cache_insertions).sum(),
        cache_evictions: per_shard.iter().map(|s| s.stats.cache_evictions).sum(),
        cache_bytes: per_shard.iter().map(|s| s.stats.cache_bytes).sum(),
        answer_hash: total.answer_hash,
        latency: total.latency,
        service_time: total.service_time,
        gather: total.gather,
        per_shard,
    }
}

#[allow(clippy::too_many_arguments)]
fn client_loop<T: StressTarget>(
    target: &T,
    mix: &Mix,
    cfg: &DriverConfig,
    base_n: usize,
    next_op: &AtomicU64,
    bucket: &Option<Mutex<TokenBucket>>,
    interval_ns: Option<u64>,
    start: Instant,
    end: Instant,
) -> ClientStats {
    let mut stats = ClientStats::default();
    loop {
        if Instant::now() >= end {
            break;
        }
        let i = next_op.fetch_add(1, Ordering::Relaxed);
        if cfg.ops_limit.is_some_and(|cap| i >= cap) {
            break;
        }
        // Pacing: wait for a token; give up (and end the run) rather than
        // issue an operation past the configured duration.
        if let Some(bucket) = bucket {
            let mut gave_up = false;
            loop {
                let now = Instant::now();
                if now >= end {
                    gave_up = true;
                    break;
                }
                let now_ns = now.duration_since(start).as_nanos() as u64;
                // Bind the decision first: matching on the lock expression
                // directly would keep the MutexGuard temporary alive across
                // the sleep, making every other client block on the bucket
                // for the whole pause.
                let decision = bucket.lock().unwrap().try_acquire(now_ns);
                match decision {
                    Ok(()) => break,
                    Err(wait_ns) => {
                        let sleep = Duration::from_nanos(wait_ns)
                            .min(end.saturating_duration_since(now));
                        std::thread::sleep(sleep);
                    }
                }
            }
            if gave_up {
                break;
            }
        }
        // Write decision: a pure function of (mutation_seed, index), so
        // the read/write interleaving replays exactly. Write indices are
        // consumed from the shared stream but recorded apart from the read
        // accounting — with write_ratio 0 the loop below is bit-identical
        // to a run without any write path.
        let is_write = cfg.write_ratio > 0.0
            && mix3(cfg.mutation_seed, i, WRITE_STREAM) % 1_000_000
                < (cfg.write_ratio * 1e6) as u64;
        if is_write {
            let t0 = Instant::now();
            match target.submit_mutation(mutation_op(cfg.mutation_seed, i, base_n)) {
                Ok(_) => {
                    stats.writes += 1;
                    stats.write_accept.record(t0.elapsed().as_nanos() as u64);
                }
                Err(SubmitError::Closed) => break,
                Err(_) => stats.write_errors += 1,
            }
            continue;
        }
        // Intended start on the fixed schedule (coordinated-omission
        // correction); actual submit time when unthrottled.
        let intended = match interval_ns {
            Some(step) => start + Duration::from_nanos(i.saturating_mul(step)),
            None => Instant::now(),
        };
        let req = QueryRequest::new(i, mix.op(cfg.seed, i))
            .with_seed(mix3(cfg.seed, i, REQ_STREAM))
            .with_timeout(cfg.timeout);
        let ticket = match target.submit_op(req) {
            Ok(t) => t,
            Err(_) => break,
        };
        let resp = ticket.wait();
        let done = Instant::now();
        stats.ops += 1;
        stats.retries += u64::from(resp.retries());
        match resp.route {
            Route::Direct => {}
            Route::Routed { .. } => stats.routed += 1,
            Route::Scattered { .. } => {
                stats.scattered += 1;
                stats.gather.record(resp.gather_wait.as_nanos() as u64);
            }
        }
        stats
            .latency
            .record(done.saturating_duration_since(intended).as_nanos() as u64);
        stats.service_time.record(resp.service_time.as_nanos() as u64);
        match &resp.result {
            Ok(out) => {
                stats.ok += 1;
                stats.answer_hash ^= output_hash(resp.id, out);
            }
            Err(e) => {
                stats.errors += 1;
                match e {
                    QueryError::Unsupported(_) => stats.unsupported += 1,
                    QueryError::Timeout { .. } => stats.timeouts += 1,
                    _ => {}
                }
            }
        }
    }
    stats
}
