//! Deterministic operation mixes.
//!
//! An operation mix maps a `(seed, operation index)` pair to a
//! [`QueryKind`] as a pure function — no shared RNG stream — so any number
//! of driver threads can draw operations concurrently and two runs with the
//! same seed issue the *identical* operation sequence regardless of thread
//! interleaving.

use crate::request::QueryKind;
use vcgp_core::{service, Workload};
use vcgp_graph::rng::mix3;
use vcgp_graph::{Graph, SplitMix64};

/// Workloads light enough for the serving path, in preference order.
/// (Diameter/APSP, betweenness, and the tree rows are batch-shaped: full
/// APSP floods `O(n·m)` messages and the tree rows need a tree input.)
const SERVING_WORKLOADS: [Workload; 10] = [
    Workload::CcHashMin,
    Workload::CcSv,
    Workload::SpanningTree,
    Workload::Sssp,
    Workload::PageRank,
    Workload::Coloring,
    Workload::Wcc,
    Workload::Scc,
    Workload::GraphSim,
    Workload::DualSim,
];

/// Domain separator for the operation stream.
const MIX_STREAM: u64 = 0x4D49_5853; // "MIXS"

/// A resolved operation mix: percentage of point lookups plus the workload
/// pool drawn for the remainder, already filtered to what the resident
/// graph supports.
#[derive(Debug, Clone)]
pub struct Mix {
    name: &'static str,
    point_pct: u64,
    workloads: Vec<Workload>,
    /// Point lookups draw vertex ids from `[0, vertex_span)` — the full
    /// graph for the uniform presets, a small low-id prefix for `hotspot`.
    vertex_span: usize,
}

impl Mix {
    /// Resolves a named preset against `graph`:
    ///
    /// * `points` — 100 % point lookups (degree / neighbor reads);
    /// * `mixed` — 80 % point lookups, 20 % analytics workloads;
    /// * `analytics` — 100 % analytics workloads;
    /// * `hotspot` — 100 % point lookups over the lowest `max(1, n/8)`
    ///   vertex ids: a contiguous hot set, so under range shard placement
    ///   every request lands on one shard while hash placement spreads it —
    ///   the shard-locality probe;
    /// * `scatter` — 100 % analytics restricted to gather-mergeable
    ///   workloads: every operation fans out to all shards, the pure
    ///   scatter/gather stressor.
    ///
    /// The workload pool is the serving-suitable subset of Table 1
    /// intersected with [`vcgp_core::service::supported_workloads`]; a
    /// preset that needs workloads fails on a graph that supports none.
    pub fn preset(name: &str, graph: &Graph) -> Result<Mix, String> {
        let (canonical, point_pct): (&'static str, u64) = match name {
            "points" => ("points", 100),
            "mixed" => ("mixed", 80),
            "analytics" => ("analytics", 0),
            "hotspot" => ("hotspot", 100),
            "scatter" => ("scatter", 0),
            other => {
                return Err(format!(
                    "unknown mix '{other}' (expected points, mixed, analytics, hotspot, or scatter)"
                ))
            }
        };
        let workloads: Vec<Workload> = if point_pct == 100 {
            Vec::new()
        } else {
            SERVING_WORKLOADS
                .into_iter()
                .filter(|&w| service::supported(w, graph).is_ok())
                .filter(|&w| {
                    canonical != "scatter"
                        || service::gather_mode(w) != service::GatherMode::Whole
                })
                .collect()
        };
        if point_pct < 100 && workloads.is_empty() {
            return Err(format!(
                "mix '{canonical}' needs analytics workloads, but this graph supports none"
            ));
        }
        let n = graph.num_vertices();
        let vertex_span = if canonical == "hotspot" {
            (n / 8).max(1)
        } else {
            n
        };
        Ok(Mix {
            name: canonical,
            point_pct,
            workloads,
            vertex_span,
        })
    }

    /// The id range point lookups draw from (`n` except for `hotspot`).
    pub fn vertex_span(&self) -> usize {
        self.vertex_span
    }

    /// The preset name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The resolved workload pool.
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// The operation at `index` in the run seeded by `seed` — a pure
    /// function of its arguments.
    pub fn op(&self, seed: u64, index: u64) -> QueryKind {
        let mut rng = SplitMix64::new(mix3(seed, index, MIX_STREAM));
        let roll = rng.next_below(100);
        if roll < self.point_pct {
            let v = rng.next_index(self.vertex_span) as u32;
            if rng.next_bool(0.5) {
                QueryKind::Degree(v)
            } else {
                QueryKind::Neighbors(v)
            }
        } else {
            QueryKind::Workload(self.workloads[rng.next_index(self.workloads.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;

    #[test]
    fn presets_resolve_against_graph_capabilities() {
        let g = generators::gnm_connected(32, 64, 1);
        let points = Mix::preset("points", &g).unwrap();
        assert!(points.workloads().is_empty());
        let mixed = Mix::preset("mixed", &g).unwrap();
        assert!(!mixed.workloads().is_empty());
        // Undirected graph: no Wcc/Scc/sims in the pool.
        assert!(!mixed.workloads().contains(&Workload::Wcc));
        assert!(Mix::preset("nope", &g).is_err());
    }

    #[test]
    fn op_is_a_pure_function() {
        let g = generators::gnm_connected(32, 64, 1);
        let mix = Mix::preset("mixed", &g).unwrap();
        for i in 0..200 {
            assert_eq!(mix.op(7, i), mix.op(7, i), "index {i}");
        }
        // Different seeds give different sequences.
        let a: Vec<QueryKind> = (0..64).map(|i| mix.op(1, i)).collect();
        let b: Vec<QueryKind> = (0..64).map(|i| mix.op(2, i)).collect();
        assert_ne!(a, b);
    }
}
