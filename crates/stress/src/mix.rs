//! Deterministic operation mixes.
//!
//! An operation mix maps a `(seed, operation index)` pair to a
//! [`QueryKind`] as a pure function — no shared RNG stream — so any number
//! of driver threads can draw operations concurrently and two runs with the
//! same seed issue the *identical* operation sequence regardless of thread
//! interleaving.
//!
//! Point-lookup keys are uniform over the mix's vertex span by default;
//! [`Mix::with_zipf`] switches them to a seeded **zipfian** draw
//! ([`Zipf`]), making hotspot skew a tunable dial instead of the fixed
//! low-id prefix of the `hotspot` preset. Rank 0 (the hottest key) is
//! vertex id 0, so zipfian skew composes with range shard placement to
//! concentrate load on shard 0 — the hot-shard reproduction the replica
//! experiments drive.

use crate::request::QueryKind;
use vcgp_core::{service, Workload};
use vcgp_graph::rng::mix3;
use vcgp_graph::{Graph, SplitMix64};

/// Workloads light enough for the serving path, in preference order.
/// (Diameter/APSP, betweenness, and the tree rows are batch-shaped: full
/// APSP floods `O(n·m)` messages and the tree rows need a tree input.)
const SERVING_WORKLOADS: [Workload; 10] = [
    Workload::CcHashMin,
    Workload::CcSv,
    Workload::SpanningTree,
    Workload::Sssp,
    Workload::PageRank,
    Workload::Coloring,
    Workload::Wcc,
    Workload::Scc,
    Workload::GraphSim,
    Workload::DualSim,
];

/// Domain separator for the operation stream. Shared with the scenario
/// engine's [`crate::scenario::PhaseMix`], which must reproduce the exact
/// per-operation RNG stream so preset desugarings stay bit-identical.
pub(crate) const MIX_STREAM: u64 = 0x4D49_5853; // "MIXS"

/// The serving-suitable workload pool on `graph`: the subset of
/// [`SERVING_WORKLOADS`] the graph supports, optionally restricted to
/// gather-mergeable workloads (those a sharded service can scatter).
pub(crate) fn serving_pool(graph: &Graph, scatter_only: bool) -> Vec<Workload> {
    SERVING_WORKLOADS
        .into_iter()
        .filter(|&w| service::supported(w, graph).is_ok())
        .filter(|&w| !scatter_only || service::gather_mode(w) != service::GatherMode::Whole)
        .collect()
}

/// A zipfian sampler over ranks `[0, n)` (rank 0 most probable, mass of
/// rank `k` proportional to `1 / (k+1)^s`), sampled by rejection
/// inversion of the zipf distribution's integral approximation — O(1)
/// memory and time per draw for any `n`, no precomputed tables, so it
/// stays a *pure* function of the per-operation RNG the mix derives from
/// `(seed, index)` (the same construction cql-stress uses for seeded row
/// generation).
#[derive(Debug, Clone, Copy)]
pub struct Zipf {
    n: usize,
    s: f64,
    /// `H(1.5) - 1`: upper end of the inversion domain.
    h_x1: f64,
    /// `H(n + 0.5)`: lower end of the inversion domain.
    h_n: f64,
    /// Acceptance shortcut: `2 - H⁻¹(H(2.5) - h(2))`.
    threshold: f64,
}

impl Zipf {
    /// A sampler over `[0, n)` with exponent `s` (`s > 0`; `s = 1` is the
    /// classic zipf law, larger is more skewed).
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n >= 1, "zipf needs a non-empty rank space");
        assert!(s > 0.0 && s.is_finite(), "zipf exponent must be positive");
        Zipf {
            n,
            s,
            h_x1: h_integral(1.5, s) - 1.0,
            h_n: h_integral(n as f64 + 0.5, s),
            threshold: 2.0 - h_integral_inverse(h_integral(2.5, s) - h(2.0, s), s),
        }
    }

    /// The configured exponent.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Draws one rank in `[0, n)`.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        loop {
            let u = self.h_n + rng.next_f64() * (self.h_x1 - self.h_n);
            let x = h_integral_inverse(u, self.s);
            let k = x.round().clamp(1.0, self.n as f64);
            // Accept k when it is close enough to x (the common case) or
            // when u falls under the true mass of k.
            if k - x <= self.threshold || u >= h_integral(k + 0.5, self.s) - h(k, self.s) {
                return k as usize - 1;
            }
        }
    }
}

/// `H(x) = ((x^(1-s)) - 1) / (1 - s)`, the integral of `h`, computed via
/// `expm1`/`log1p` helpers so the `s = 1` limit (`ln x`) falls out without
/// a special case.
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    helper2((1.0 - s) * log_x) * log_x
}

/// `h(x) = x^(-s)`, the mass density.
fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// `H⁻¹(x)`.
fn h_integral_inverse(x: f64, s: f64) -> f64 {
    // Numerical round-off can push t slightly below the domain edge for
    // large exponents; clamp like the reference implementation.
    let t = (x * (1.0 - s)).max(-1.0);
    (helper1(t) * x).exp()
}

/// `ln(1 + x) / x`, stable near zero.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// `(e^x - 1) / x`, stable near zero.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + 0.25 * x))
    }
}

/// A resolved operation mix: percentage of point lookups plus the workload
/// pool drawn for the remainder, already filtered to what the resident
/// graph supports.
#[derive(Debug, Clone)]
pub struct Mix {
    name: &'static str,
    point_pct: u64,
    workloads: Vec<Workload>,
    /// Point lookups draw vertex ids from `[0, vertex_span)` — the full
    /// graph for the uniform presets, a small low-id prefix for `hotspot`.
    vertex_span: usize,
    /// When set, point-lookup keys are drawn zipfian over the span instead
    /// of uniformly (`None` keeps the op stream bit-identical to what it
    /// was before this knob existed).
    zipf: Option<Zipf>,
}

impl Mix {
    /// Resolves a named preset against `graph`:
    ///
    /// * `points` — 100 % point lookups (degree / neighbor reads);
    /// * `mixed` — 80 % point lookups, 20 % analytics workloads;
    /// * `analytics` — 100 % analytics workloads;
    /// * `hotspot` — 100 % point lookups over the lowest `max(1, n/8)`
    ///   vertex ids: a contiguous hot set, so under range shard placement
    ///   every request lands on one shard while hash placement spreads it —
    ///   the shard-locality probe;
    /// * `scatter` — 100 % analytics restricted to gather-mergeable
    ///   workloads: every operation fans out to all shards, the pure
    ///   scatter/gather stressor.
    ///
    /// The workload pool is the serving-suitable subset of Table 1
    /// intersected with [`vcgp_core::service::supported_workloads`]; a
    /// preset that needs workloads fails on a graph that supports none.
    pub fn preset(name: &str, graph: &Graph) -> Result<Mix, String> {
        let (canonical, point_pct): (&'static str, u64) = match name {
            "points" => ("points", 100),
            "mixed" => ("mixed", 80),
            "analytics" => ("analytics", 0),
            "hotspot" => ("hotspot", 100),
            "scatter" => ("scatter", 0),
            other => {
                return Err(format!(
                    "unknown mix '{other}' (expected points, mixed, analytics, hotspot, or scatter)"
                ))
            }
        };
        let workloads: Vec<Workload> = if point_pct == 100 {
            Vec::new()
        } else {
            serving_pool(graph, canonical == "scatter")
        };
        if point_pct < 100 && workloads.is_empty() {
            return Err(format!(
                "mix '{canonical}' needs analytics workloads, but this graph supports none"
            ));
        }
        let n = graph.num_vertices();
        let vertex_span = if canonical == "hotspot" {
            (n / 8).max(1)
        } else {
            n
        };
        Ok(Mix {
            name: canonical,
            point_pct,
            workloads,
            vertex_span,
            zipf: None,
        })
    }

    /// Makes point lookups draw their vertex id zipfian over the span
    /// with exponent `s` (rank 0 = id 0 = hottest; composes with the
    /// `hotspot` span and with range placement). Fails for a
    /// non-positive or non-finite exponent; the default (no call) keeps
    /// the uniform draw and its exact historical operation stream.
    pub fn with_zipf(mut self, s: f64) -> Result<Mix, String> {
        if !(s > 0.0 && s.is_finite()) {
            return Err(format!("zipf exponent must be positive and finite, got {s}"));
        }
        self.zipf = Some(Zipf::new(self.vertex_span, s));
        Ok(self)
    }

    /// The configured zipf sampler, if any.
    pub fn zipf(&self) -> Option<&Zipf> {
        self.zipf.as_ref()
    }

    /// The id range point lookups draw from (`n` except for `hotspot`).
    pub fn vertex_span(&self) -> usize {
        self.vertex_span
    }

    /// Percentage of operations that are point lookups.
    pub(crate) fn point_pct(&self) -> u64 {
        self.point_pct
    }

    /// The preset name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The resolved workload pool.
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// The operation at `index` in the run seeded by `seed` — a pure
    /// function of its arguments.
    pub fn op(&self, seed: u64, index: u64) -> QueryKind {
        let mut rng = SplitMix64::new(mix3(seed, index, MIX_STREAM));
        let roll = rng.next_below(100);
        if roll < self.point_pct {
            let v = match &self.zipf {
                Some(z) => z.sample(&mut rng) as u32,
                None => rng.next_index(self.vertex_span) as u32,
            };
            if rng.next_bool(0.5) {
                QueryKind::Degree(v)
            } else {
                QueryKind::Neighbors(v)
            }
        } else {
            QueryKind::Workload(self.workloads[rng.next_index(self.workloads.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;

    #[test]
    fn presets_resolve_against_graph_capabilities() {
        let g = generators::gnm_connected(32, 64, 1);
        let points = Mix::preset("points", &g).unwrap();
        assert!(points.workloads().is_empty());
        let mixed = Mix::preset("mixed", &g).unwrap();
        assert!(!mixed.workloads().is_empty());
        // Undirected graph: no Wcc/Scc/sims in the pool.
        assert!(!mixed.workloads().contains(&Workload::Wcc));
        assert!(Mix::preset("nope", &g).is_err());
    }

    #[test]
    fn op_is_a_pure_function() {
        let g = generators::gnm_connected(32, 64, 1);
        let mix = Mix::preset("mixed", &g).unwrap();
        for i in 0..200 {
            assert_eq!(mix.op(7, i), mix.op(7, i), "index {i}");
        }
        // Different seeds give different sequences.
        let a: Vec<QueryKind> = (0..64).map(|i| mix.op(1, i)).collect();
        let b: Vec<QueryKind> = (0..64).map(|i| mix.op(2, i)).collect();
        assert_ne!(a, b);
    }

    /// The key of a point lookup, if the op is one.
    fn point_key(op: QueryKind) -> Option<u32> {
        match op {
            QueryKind::Degree(v) | QueryKind::Neighbors(v) => Some(v),
            _ => None,
        }
    }

    #[test]
    fn zipf_op_stays_pure_and_in_range() {
        let g = generators::gnm_connected(64, 128, 3);
        let mix = Mix::preset("points", &g).unwrap().with_zipf(1.0).unwrap();
        for i in 0..300 {
            let op = mix.op(9, i);
            assert_eq!(op, mix.op(9, i), "index {i}");
            let v = point_key(op).expect("points mix");
            assert!((v as usize) < g.num_vertices(), "key {v} out of span");
        }
    }

    #[test]
    fn zipf_skews_toward_rank_zero_and_sharpens_with_s() {
        let g = generators::gnm_connected(256, 512, 5);
        let count_low = |mix: &Mix| -> usize {
            (0..4000u64)
                .filter_map(|i| point_key(mix.op(21, i)))
                .filter(|&v| (v as usize) < g.num_vertices() / 16)
                .count()
        };
        let uniform = Mix::preset("points", &g).unwrap();
        let mild = Mix::preset("points", &g).unwrap().with_zipf(1.0).unwrap();
        let sharp = Mix::preset("points", &g).unwrap().with_zipf(2.0).unwrap();
        let (u, m, s) = (count_low(&uniform), count_low(&mild), count_low(&sharp));
        // Uniform puts ~1/16 of the mass in the lowest 1/16 of ids; s=1
        // puts far more there, and s=2 more still.
        assert!(m > u * 3, "zipf(1) low-id mass {m} not >> uniform {u}");
        assert!(s > m, "zipf(2) low-id mass {s} not above zipf(1) {m}");
        // The s=1 special case of the integral helpers must not produce
        // out-of-range or constant draws.
        let distinct: std::collections::BTreeSet<u32> =
            (0..2000u64).filter_map(|i| point_key(mild.op(21, i))).collect();
        assert!(distinct.len() > 10, "zipf(1) draws collapsed: {distinct:?}");
    }

    #[test]
    fn zipf_rejects_bad_exponents() {
        let g = generators::gnm_connected(16, 32, 1);
        assert!(Mix::preset("points", &g).unwrap().with_zipf(0.0).is_err());
        assert!(Mix::preset("points", &g).unwrap().with_zipf(-1.0).is_err());
        assert!(Mix::preset("points", &g).unwrap().with_zipf(f64::NAN).is_err());
    }

    #[test]
    fn zipf_none_preserves_historical_stream() {
        // The zipf field must not perturb the default draw: the op stream
        // with zipf disabled is byte-for-byte what it always was.
        let g = generators::gnm_connected(32, 64, 1);
        let mix = Mix::preset("hotspot", &g).unwrap();
        let rng_check = |i: u64| {
            let mut rng = SplitMix64::new(mix3(7, i, MIX_STREAM));
            let _ = rng.next_below(100);
            let v = rng.next_index(mix.vertex_span()) as u32;
            let degree = rng.next_bool(0.5);
            let expect = if degree { QueryKind::Degree(v) } else { QueryKind::Neighbors(v) };
            assert_eq!(mix.op(7, i), expect, "index {i}");
        };
        for i in 0..100 {
            rng_check(i);
        }
    }
}
