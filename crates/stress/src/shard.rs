//! Shard-local slices of the resident graph and the sharded service built
//! from them.
//!
//! A [`ShardedGraphService`] splits serving across `S` shards at load time.
//! Vertex *ownership* is assigned by the same
//! [`vcgp_pregel::partition::Partitioner`] the engine uses for workers, so
//! the hash/range strategies — and the `VCGP_PARTITIONING` override, which
//! [`crate::service::ServiceConfig::default`] picks up through
//! `PregelConfig::default` — apply to shard placement too.
//!
//! Each shard materializes a **local subgraph**: the out-adjacency of its
//! owned vertices over the full vertex-id space (a directed CSR slice).
//! Owner-routed point lookups (degree / neighbors) are answered from this
//! slice alone, never touching the full graph's CSR. The *structural* full
//! graph is additionally retained per shard behind the shared [`Arc`] —
//! the single-process stand-in for the partitioned-plus-replicated storage
//! a distributed deployment would use — because scattered analytics legs
//! run the full deterministic algorithm and then reduce its per-vertex
//! outputs over the shard's owned slice (see
//! [`vcgp_core::service::run_workload_partial`] for why that is the only
//! way a scatter/gather merge can be *exactly* equal to the unsharded
//! answer).
//!
//! Under live mutations the slices are **per-epoch**: every
//! [`EpochSnapshot`] carries one [`ShardSlice`] per shard, and the epoch
//! writer rebuilds them *incrementally* — [`vcgp_graph::splice_slice`]
//! patches only the touched rows of the previous epoch's slice (falling
//! back to a from-scratch rebuild when the delta is large), and the
//! owned-id-set hash is extended rather than recomputed when the id space
//! grows. Ownership itself is **frozen at start**: the partitioner is
//! total over the whole `u32` id space, so vertices added later still get
//! a deterministic owner and the routing of pinned in-flight requests is
//! never invalidated (vertex removal detaches but never shrinks the id
//! space for the same reason).
//!
//! Each shard runs `R ≥ 1` **replica cores** ([`Core`]: bounded queue,
//! executor pool, striped counters, queue-depth high-water mark) over the
//! *same* epoch-pinned snapshot and shard slice — replicating a hot shard
//! costs queue/executor state, not graph copies. The router picks a
//! replica per dispatch via the configured
//! [`RoutingPolicy`](crate::router::RoutingPolicy); all replicas of a
//! shard share one result cache (keys are replica-agnostic), epoch swaps
//! fan the invalidation out once per shard, and teardown drains then joins
//! every replica core. Per-shard *and* per-replica occupancy is observable
//! ([`ShardedGraphService::shard_snapshots`]).

use crate::cache::{CacheKey, ResultCache};
use crate::epoch::{
    spawn_writer, EpochManager, EpochRebuild, EpochSnapshot, ShardSlice, WriterReport, WriterStats,
};
use crate::request::{QueryError, QueryKind, QueryOutput, QueryRequest};
use crate::router::RoutingPolicy;
use crate::service::{
    execute_on_full_graph, overlay_cache, service_cache, workload_cache_key, CacheInvalidator,
    Core, ExecBackend, ReplicaSeries, ReplicaSnapshot, ServiceConfig, ServiceStats, ShardSnapshot,
    SubmitError, Ticket,
};
use std::time::Instant;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use vcgp_core::fingerprint::{graph_fingerprint, leg_fingerprint};
use vcgp_graph::rng::mix3;
use vcgp_graph::{apply_batch, splice_slice, ApplyDelta, ApplyStats, Graph, GraphBuilder, Mutation,
    VertexId};
use vcgp_pregel::partition::Partitioner;
use vcgp_pregel::PregelConfig;

/// Domain separator of the owned-id-set hash.
const OWNS_STREAM: u64 = 0x4F57_4E53; // "OWNS"

/// Domain separator folding the slice fingerprint into the leg identity.
const SLICE_STREAM: u64 = 0x534C_4943; // "SLIC"

/// Domain separator seeding each shard's round-robin replica cursor.
const RR_STREAM: u64 = 0x5252_4F54; // "RROT"

/// Builds shard `shard`'s local subgraph: a directed graph over the full
/// vertex-id space containing exactly the out-arcs of owned vertices (with
/// weights and labels preserved), so owned point lookups answer identically
/// to the full graph.
fn build_local_slice(full: &Graph, partitioner: &Partitioner, shard: usize) -> Graph {
    let n = full.num_vertices();
    let mut b = GraphBuilder::directed(n);
    for v in 0..n as VertexId {
        if partitioner.owner(v) == shard {
            for (t, w) in full.out_edges(v) {
                b.add_weighted_edge(v, t, w);
            }
        }
    }
    if let Some(labels) = full.labels() {
        b.set_labels(labels.to_vec());
    }
    b.build()
}

/// Builds one shard's [`ShardSlice`] from scratch: the local subgraph plus
/// the owned-id-set hash and the leg cache fingerprint derived from it.
fn build_shard_slice(
    full: &Graph,
    partitioner: &Partitioner,
    shard: usize,
    whole_fp: u64,
) -> ShardSlice {
    let local = build_local_slice(full, partitioner, shard);
    // The slice fingerprint alone misses owned vertices with no out-arcs
    // (sinks leave no trace in the slice), so fold in an order-independent
    // hash of the owned id set — the leg identity then changes under *any*
    // ownership change.
    let mut owned = 0usize;
    let mut owned_hash = 0u64;
    for v in 0..full.num_vertices() as VertexId {
        if partitioner.owner(v) == shard {
            owned += 1;
            owned_hash = owned_hash.wrapping_add(mix3(u64::from(v), OWNS_STREAM, 0));
        }
    }
    ShardSlice {
        leg_fp: leg_fingerprint(whole_fp, mix3(graph_fingerprint(&local), owned_hash, SLICE_STREAM)),
        local,
        owned,
        owned_hash,
    }
}

/// Rebuilds one shard's slice for the next epoch, incrementally: extend
/// the owned id set over any vertices the batch added (ownership of
/// existing ids is frozen), splice only the touched rows of the previous
/// slice, and refresh the leg fingerprint. Falls back to a from-scratch
/// rebuild when the delta covers more than a quarter of the graph — at
/// that point the splice's row bookkeeping costs more than it saves.
fn rebuild_slice(
    old: &ShardSlice,
    full: &Arc<Graph>,
    whole_fp: u64,
    delta: &ApplyDelta,
    partitioner: &Partitioner,
    shard: usize,
    old_n: usize,
) -> ShardSlice {
    let owns = |v: VertexId| partitioner.owner(v) == shard;
    let mut owned = old.owned;
    let mut owned_hash = old.owned_hash;
    for v in old_n..delta.new_n {
        if owns(v as VertexId) {
            owned += 1;
            owned_hash = owned_hash.wrapping_add(mix3(v as u64, OWNS_STREAM, 0));
        }
    }
    let local = if delta.touched.len() * 4 > full.num_vertices() {
        build_local_slice(full, partitioner, shard)
    } else {
        splice_slice(&old.local, full, &delta.touched, &owns)
    };
    ShardSlice {
        leg_fp: leg_fingerprint(whole_fp, mix3(graph_fingerprint(&local), owned_hash, SLICE_STREAM)),
        local,
        owned,
        owned_hash,
    }
}

/// The epoch-rebuild backend of the sharded service: apply the batch to
/// the full graph (incremental CSR splice), then rebuild each shard's
/// slice incrementally from the previous epoch's.
struct ShardedRebuild {
    partitioner: Partitioner,
    invalidators: Vec<CacheInvalidator>,
}

impl EpochRebuild for ShardedRebuild {
    fn rebuild(&self, base: &EpochSnapshot, batch: &[Mutation]) -> (EpochSnapshot, ApplyStats) {
        let old_n = base.graph.num_vertices();
        let (graph, delta) = apply_batch(&base.graph, batch);
        let graph = Arc::new(graph);
        let whole_fp = graph_fingerprint(&graph);
        let locals = base
            .locals
            .iter()
            .enumerate()
            .map(|(s, old)| {
                Arc::new(rebuild_slice(
                    old,
                    &graph,
                    whole_fp,
                    &delta,
                    &self.partitioner,
                    s,
                    old_n,
                ))
            })
            .collect();
        (
            EpochSnapshot {
                id: base.id + 1,
                graph,
                fingerprint: whole_fp,
                locals,
            },
            delta.stats,
        )
    }

    fn invalidate(&self) {
        for inv in &self.invalidators {
            inv.invalidate();
        }
    }
}

/// One shard's execution backend: the pinned epoch's local slice for point
/// lookups, its full structural graph (owned-slice filtered) for
/// analytics.
struct ShardBackend {
    shard: usize,
    partitioner: Partitioner,
    /// Epoch-0 fallback for requests without a pinned snapshot (none in
    /// practice: the router stamps every submission).
    base: Arc<EpochSnapshot>,
}

impl ShardBackend {
    fn owns(&self, v: VertexId) -> bool {
        self.partitioner.owner(v) == self.shard
    }
}

impl ExecBackend for ShardBackend {
    fn execute(
        &self,
        req: &QueryRequest,
        engine: &PregelConfig,
    ) -> Result<QueryOutput, QueryError> {
        let snap = req.epoch.as_ref().unwrap_or(&self.base);
        match req.kind {
            // The router owner-routes lookups, so these normally hit the
            // local slice. A misrouted (e.g. directly submitted) lookup of
            // a non-owned vertex falls back to the full graph so the answer
            // stays correct either way.
            QueryKind::Degree(v) => {
                let local = &snap.locals[self.shard].local;
                if (v as usize) >= local.num_vertices() {
                    return Err(QueryError::NoSuchVertex(v));
                }
                let g = if self.owns(v) { local } else { &*snap.graph };
                Ok(QueryOutput::Degree(g.out_degree(v)))
            }
            QueryKind::Neighbors(v) => {
                let local = &snap.locals[self.shard].local;
                if (v as usize) >= local.num_vertices() {
                    return Err(QueryError::NoSuchVertex(v));
                }
                let g = if self.owns(v) { local } else { &*snap.graph };
                Ok(QueryOutput::Neighbors(g.out_neighbors(v).to_vec()))
            }
            QueryKind::WorkloadPartial(w) => {
                let run = vcgp_core::service::run_workload_partial(
                    w,
                    &snap.graph,
                    engine,
                    req.seed,
                    &|v| self.owns(v),
                )
                .map_err(|e| QueryError::Unsupported(e.to_string()))?;
                Ok(QueryOutput::WorkloadPartial {
                    partial: run.partial,
                    supersteps: run.stats.supersteps(),
                    messages: run.stats.total_messages(),
                })
            }
            // Whole workloads (the primary-shard fall-back path) and the
            // debug hooks behave exactly like the single-instance service.
            _ => execute_on_full_graph(&snap.graph, &req.kind, req.seed, engine),
        }
    }

    fn cache_key(&self, req: &QueryRequest) -> Option<CacheKey> {
        let snap = req.epoch.as_ref().unwrap_or(&self.base);
        workload_cache_key(
            &req.kind,
            req.seed,
            snap.fingerprint,
            snap.locals[self.shard].leg_fp,
        )
    }
}

/// One shard: `R ≥ 1` replica cores over the same slice, the shard-shared
/// result cache, and the round-robin replica cursor.
pub(crate) struct Shard {
    pub(crate) replicas: Vec<Core>,
    /// The result cache shared by every replica core (counters overlaid
    /// once per shard in [`Shard::snapshot`]).
    cache: Option<Arc<ResultCache>>,
    /// Round-robin cursor, seeded per shard so the dispatch sequence is
    /// deterministic for a fixed [`ServiceConfig::seed`].
    next_rr: AtomicU64,
}

impl Shard {
    /// Picks a replica for the next dispatch under `policy`.
    fn pick(&self, policy: RoutingPolicy) -> usize {
        if self.replicas.len() == 1 {
            return 0;
        }
        match policy {
            RoutingPolicy::RoundRobin => {
                (self.next_rr.fetch_add(1, Ordering::Relaxed) % self.replicas.len() as u64) as usize
            }
            RoutingPolicy::LeastLoaded => {
                let mut best = 0usize;
                let mut best_depth = usize::MAX;
                for (r, core) in self.replicas.iter().enumerate() {
                    let depth = core.queue_depth();
                    if depth < best_depth {
                        best = r;
                        best_depth = depth;
                    }
                }
                best
            }
        }
    }

    /// Picks a replica and submits, returning the ticket plus the pick
    /// (echoed in [`crate::request::Route::Routed`]). A shared-cache hit
    /// answers from whichever replica was picked without queueing.
    pub(crate) fn submit(
        &self,
        policy: RoutingPolicy,
        req: QueryRequest,
    ) -> Result<(Ticket, u32), SubmitError> {
        let replica = self.pick(policy);
        Ok((self.replicas[replica].submit(req)?, replica as u32))
    }

    /// Counters folded across replicas (sums; queue high-water marks take
    /// the maximum) with the shard cache's counters overlaid once.
    fn folded_stats(&self) -> ServiceStats {
        let mut stats = ServiceStats::default();
        for core in &self.replicas {
            stats.absorb(&core.stats());
        }
        overlay_cache(&mut stats, self.cache.as_deref());
        stats
    }

    /// The shard's report row: folded counters plus one row per replica.
    fn snapshot(&self, shard: usize, owned: usize) -> ShardSnapshot {
        let replicas: Vec<ReplicaSnapshot> = self
            .replicas
            .iter()
            .enumerate()
            .map(|(r, core)| ReplicaSnapshot { replica: r, stats: core.stats() })
            .collect();
        let mut stats = ServiceStats::default();
        for rs in &replicas {
            stats.absorb(&rs.stats);
        }
        overlay_cache(&mut stats, self.cache.as_deref());
        ShardSnapshot { shard, owned, stats, replicas }
    }
}

/// The resident graph served by `S` independent shard cores behind an
/// owner-routing / scatter-gather front-end (the routing itself lives in
/// [`crate::router`]), with an optional live-mutation stream installing
/// epoch-versioned snapshots (graph + per-shard slices swap together).
pub struct ShardedGraphService {
    pub(crate) graph: Arc<Graph>,
    pub(crate) partitioner: Partitioner,
    pub(crate) shards: Vec<Shard>,
    /// Shard that runs non-gather-mergeable workloads whole (the documented
    /// fall-back keeping all 20 Table 1 workloads servable).
    pub(crate) primary: usize,
    /// How the router picks a replica within a shard.
    pub(crate) routing: RoutingPolicy,
    pub(crate) epochs: Arc<EpochManager>,
    /// The epoch writer thread; `None` when the service is read-only.
    writer: Option<JoinHandle<()>>,
}

impl ShardedGraphService {
    /// Splits `graph` into `num_shards` slices — placement strategy is
    /// `config.engine.partitioning` — and spawns
    /// [`ServiceConfig::replicas`] replica [`Core`]s (queue + executor
    /// pool, sized per `config`) per shard, plus the epoch writer thread
    /// when [`ServiceConfig::mutations`] is set.
    pub fn start(graph: Arc<Graph>, config: ServiceConfig, num_shards: usize) -> ShardedGraphService {
        assert!(num_shards >= 1, "need at least one shard");
        assert!(config.replicas >= 1, "need at least one replica per shard");
        let n = graph.num_vertices();
        let partitioner = Partitioner::new(config.engine.partitioning, n, num_shards);
        let whole_fp = graph_fingerprint(&graph);
        let locals: Vec<Arc<ShardSlice>> = (0..num_shards)
            .map(|s| Arc::new(build_shard_slice(&graph, &partitioner, s, whole_fp)))
            .collect();
        let epochs = Arc::new(EpochManager::new(
            EpochSnapshot {
                id: 0,
                graph: Arc::clone(&graph),
                fingerprint: whole_fp,
                locals,
            },
            config.mutations.as_ref(),
        ));
        let base = epochs.current();
        let shards: Vec<Shard> = (0..num_shards)
            .map(|s| {
                let backend: Arc<dyn ExecBackend> = Arc::new(ShardBackend {
                    shard: s,
                    partitioner,
                    base: Arc::clone(&base),
                });
                // ONE cache per shard, shared by every replica core: keys
                // carry no replica identity, so an answer computed on any
                // replica serves the whole shard.
                let cache = service_cache(&config);
                let replicas = (0..config.replicas)
                    .map(|r| {
                        Core::start(
                            Arc::clone(&backend),
                            &config,
                            &format!("shard{s}r{r}"),
                            cache.clone(),
                        )
                    })
                    .collect();
                Shard {
                    replicas,
                    cache,
                    next_rr: AtomicU64::new(mix3(config.seed, s as u64, RR_STREAM)),
                }
            })
            .collect();
        let writer = config.mutations.is_some().then(|| {
            // One invalidator per shard (not per replica): the cache is
            // shard-scoped, so each swap clears it exactly once.
            let invalidators = shards
                .iter()
                .map(|sh| CacheInvalidator::new(sh.cache.clone()))
                .collect();
            spawn_writer(
                Arc::clone(&epochs),
                Box::new(ShardedRebuild {
                    partitioner,
                    invalidators,
                }),
            )
        });
        ShardedGraphService {
            graph,
            partitioner,
            shards,
            primary: 0,
            routing: config.routing,
            epochs,
            writer,
        }
    }

    /// The initially loaded (epoch 0) graph. Use
    /// [`ShardedGraphService::epoch`] for the currently serving version.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The currently serving epoch snapshot.
    pub fn epoch(&self) -> Arc<EpochSnapshot> {
        self.epochs.current()
    }

    /// Every epoch installed so far (including the initial one), when the
    /// service was started with
    /// [`MutationConfig::keep_history`](crate::epoch::MutationConfig::keep_history);
    /// `None` otherwise. Test instrumentation.
    pub fn epoch_history(&self) -> Option<Vec<Arc<EpochSnapshot>>> {
        self.epochs.history()
    }

    /// Appends one mutation to the bounded write buffer (blocking while it
    /// is full), returning its accept sequence number. The writer applies
    /// batches to the full graph and incrementally rebuilds every shard's
    /// slice into the next epoch. Fails with [`SubmitError::ReadOnly`]
    /// when the service was started without [`ServiceConfig::mutations`].
    pub fn submit_mutation(&self, mutation: Mutation) -> Result<u64, SubmitError> {
        self.epochs.accept(mutation)
    }

    /// Writer-side counters (epoch id, swaps, accepted/applied/no-op
    /// mutations, backlog).
    pub fn writer_stats(&self) -> WriterStats {
        self.epochs.writer_stats()
    }

    /// Writer counters plus the freshness histograms.
    pub fn writer_report(&self) -> WriterReport {
        self.epochs.writer_report()
    }

    /// Snapshots the writer counters and resets the freshness histograms —
    /// the run-scoping baseline.
    pub fn writer_baseline(&self) -> WriterStats {
        self.epochs.writer_baseline()
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Replica cores per shard (every shard runs the same count).
    pub fn replicas_per_shard(&self) -> usize {
        self.shards[0].replicas.len()
    }

    /// The shard that owns vertex `v` (total: out-of-range ids still map to
    /// a shard, which answers [`QueryError::NoSuchVertex`]).
    pub fn owner(&self, v: VertexId) -> usize {
        self.partitioner.owner(v).min(self.shards.len() - 1)
    }

    /// Per-shard identity + counters (each with one row per replica), for
    /// the stress report's occupancy and drop columns. Owned counts come
    /// from the serving epoch (they grow when mutations add vertices).
    pub fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        let snap = self.epochs.current();
        self.shards
            .iter()
            .enumerate()
            .map(|(s, sh)| sh.snapshot(s, snap.locals[s].owned))
            .collect()
    }

    /// Counters folded across every shard and replica (high-water marks
    /// take the max; each shard's cache counts once).
    pub fn stats(&self) -> ServiceStats {
        let mut total = ServiceStats::default();
        for sh in &self.shards {
            total.absorb(&sh.folded_stats());
        }
        total
    }

    /// Drops every shard's result-cache entries (each shard's replicas
    /// share one cache, so this clears S caches). Fired by the epoch
    /// writer at every swap; also callable directly (a no-op when caching
    /// is disabled).
    pub fn invalidate_cache(&self) {
        for sh in &self.shards {
            if let Some(cache) = &sh.cache {
                cache.invalidate_all();
            }
        }
    }

    /// Stops admissions (requests and mutations) on every replica of every
    /// shard; accepted requests still drain and buffered mutations are
    /// still applied.
    pub fn close(&self) {
        for sh in &self.shards {
            for core in &sh.replicas {
                core.close();
            }
        }
        self.epochs.close();
    }

    /// Closes every replica core and blocks until the writer applied every
    /// accepted mutation and all executors drained (drain-then-join across
    /// the whole replica fleet), returning the folded counters.
    pub fn shutdown(mut self) -> ServiceStats {
        self.epochs.close();
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
        for sh in &self.shards {
            for core in &sh.replicas {
                core.close();
            }
        }
        let mut total = ServiceStats::default();
        for sh in &mut self.shards {
            let mut stats = ServiceStats::default();
            for core in &mut sh.replicas {
                core.join();
                stats.absorb(&core.stats());
            }
            overlay_cache(&mut stats, sh.cache.as_deref());
            total.absorb(&stats);
        }
        total
    }

    /// Pending requests per shard (summed across the shard's replica
    /// queues).
    pub fn queue_depths(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|sh| sh.replicas.iter().map(Core::queue_depth).sum())
            .collect()
    }

    /// Pending requests per replica queue of one shard (the gauge the
    /// least-loaded policy reads).
    pub fn replica_queue_depths(&self, shard: usize) -> Vec<usize> {
        self.shards[shard].replicas.iter().map(Core::queue_depth).collect()
    }

    /// Resets the service-time recorders of every replica core of every
    /// shard to measure from `origin` with the given interval width.
    pub fn reset_service_log(&self, origin: Instant, interval_ns: u64) {
        for sh in &self.shards {
            for core in &sh.replicas {
                core.reset_service_log(origin, interval_ns);
            }
        }
    }

    /// Per-shard, per-replica service-time series since the last reset
    /// (outer index = shard, inner = replica).
    pub fn replica_series(&self) -> Vec<Vec<ReplicaSeries>> {
        self.shards
            .iter()
            .map(|sh| sh.replicas.iter().map(Core::service_series).collect())
            .collect()
    }
}

impl Drop for ShardedGraphService {
    fn drop(&mut self) {
        // Stop and join the writer before the cores' own Drops close the
        // queues — a detached writer blocked on the write buffer would
        // leak its thread.
        self.epochs.close();
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::mutation_op;
    use vcgp_graph::generators;
    use vcgp_pregel::partition::Partitioning;

    #[test]
    fn local_slice_preserves_owned_adjacency() {
        let g = generators::gnm_connected(40, 90, 11);
        for strategy in [Partitioning::Hash, Partitioning::Range] {
            let p = Partitioner::new(strategy, g.num_vertices(), 3);
            for s in 0..3 {
                let local = build_local_slice(&g, &p, s);
                assert_eq!(local.num_vertices(), g.num_vertices());
                for v in 0..g.num_vertices() as VertexId {
                    if p.owner(v) == s {
                        assert_eq!(local.out_neighbors(v), g.out_neighbors(v), "v={v}");
                        assert_eq!(local.out_weights(v), g.out_weights(v), "v={v}");
                    } else {
                        assert!(local.out_neighbors(v).is_empty(), "v={v} not owned");
                    }
                }
            }
        }
    }

    #[test]
    fn every_vertex_owned_by_exactly_one_shard() {
        let g = generators::gnm_connected(33, 70, 5);
        for strategy in [Partitioning::Hash, Partitioning::Range] {
            let p = Partitioner::new(strategy, g.num_vertices(), 4);
            let mut owned = vec![0usize; g.num_vertices()];
            for s in 0..4 {
                for v in 0..g.num_vertices() as VertexId {
                    if p.owner(v) == s {
                        owned[v as usize] += 1;
                    }
                }
            }
            assert!(owned.iter().all(|&c| c == 1));
        }
    }

    #[test]
    fn incremental_slice_rebuild_matches_from_scratch() {
        let g = generators::gnm_connected(48, 100, 9);
        let old_n = g.num_vertices();
        for strategy in [Partitioning::Hash, Partitioning::Range] {
            let p = Partitioner::new(strategy, old_n, 3);
            let whole0 = graph_fingerprint(&g);
            let slices: Vec<ShardSlice> =
                (0..3).map(|s| build_shard_slice(&g, &p, s, whole0)).collect();
            let batch: Vec<Mutation> = (0..16).map(|i| mutation_op(13, i, old_n)).collect();
            let (new_full, delta) = apply_batch(&g, &batch);
            let new_full = Arc::new(new_full);
            let whole1 = graph_fingerprint(&new_full);
            for (s, old_slice) in slices.iter().enumerate() {
                let inc = rebuild_slice(old_slice, &new_full, whole1, &delta, &p, s, old_n);
                let scratch = build_shard_slice(&new_full, &p, s, whole1);
                assert_eq!(inc.local, scratch.local, "strategy {strategy:?} shard {s}");
                assert_eq!(inc.owned, scratch.owned, "strategy {strategy:?} shard {s}");
                assert_eq!(inc.owned_hash, scratch.owned_hash);
                assert_eq!(inc.leg_fp, scratch.leg_fp, "strategy {strategy:?} shard {s}");
            }
        }
    }
}
