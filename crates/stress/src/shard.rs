//! Shard-local slices of the resident graph and the sharded service built
//! from them.
//!
//! A [`ShardedGraphService`] splits serving across `S` shards at load time.
//! Vertex *ownership* is assigned by the same
//! [`vcgp_pregel::partition::Partitioner`] the engine uses for workers, so
//! the hash/range strategies — and the `VCGP_PARTITIONING` override, which
//! [`crate::service::ServiceConfig::default`] picks up through
//! `PregelConfig::default` — apply to shard placement too.
//!
//! Each shard materializes a **local subgraph**: the out-adjacency of its
//! owned vertices over the full vertex-id space (a directed CSR slice).
//! Owner-routed point lookups (degree / neighbors) are answered from this
//! slice alone, never touching the full graph's CSR. The *structural* full
//! graph is additionally retained per shard behind the shared [`Arc`] —
//! the single-process stand-in for the partitioned-plus-replicated storage
//! a distributed deployment would use — because scattered analytics legs
//! run the full deterministic algorithm and then reduce its per-vertex
//! outputs over the shard's owned slice (see
//! [`vcgp_core::service::run_workload_partial`] for why that is the only
//! way a scatter/gather merge can be *exactly* equal to the unsharded
//! answer).
//!
//! Each shard runs its own [`Core`]: its own bounded queue, executor pool,
//! counters, and queue-depth high-water mark, so per-shard occupancy is
//! observable ([`ShardedGraphService::shard_snapshots`]).

use crate::cache::CacheKey;
use crate::request::{QueryError, QueryKind, QueryOutput};
use crate::service::{
    execute_on_full_graph, workload_cache_key, Core, ExecBackend, ServiceConfig, ServiceStats,
    ShardSnapshot,
};
use std::sync::Arc;
use vcgp_core::fingerprint::{graph_fingerprint, leg_fingerprint};
use vcgp_graph::rng::mix3;
use vcgp_graph::{Graph, GraphBuilder, VertexId};
use vcgp_pregel::partition::Partitioner;
use vcgp_pregel::PregelConfig;

/// Builds shard `shard`'s local subgraph: a directed graph over the full
/// vertex-id space containing exactly the out-arcs of owned vertices (with
/// weights and labels preserved), so owned point lookups answer identically
/// to the full graph.
fn build_local_slice(full: &Graph, partitioner: &Partitioner, shard: usize) -> Graph {
    let n = full.num_vertices();
    let mut b = GraphBuilder::directed(n);
    for v in 0..n as VertexId {
        if partitioner.owner(v) == shard {
            for (t, w) in full.out_edges(v) {
                b.add_weighted_edge(v, t, w);
            }
        }
    }
    if let Some(labels) = full.labels() {
        b.set_labels(labels.to_vec());
    }
    b.build()
}

/// One shard's execution backend: local slice for point lookups, full
/// structural graph (owned-slice filtered) for analytics.
struct ShardBackend {
    shard: usize,
    partitioner: Partitioner,
    full: Arc<Graph>,
    local: Graph,
    /// Fingerprint of the full structural graph (identifies whole answers
    /// on the primary-shard fall-back path). Computed once at start.
    whole_fp: u64,
    /// Fingerprint of this shard's scattered legs: full graph ⊕ local
    /// slice, so a leg's cache identity pins down both the algorithm input
    /// and the ownership predicate (any re-shard changes it).
    leg_fp: u64,
}

impl ShardBackend {
    fn owns(&self, v: VertexId) -> bool {
        self.partitioner.owner(v) == self.shard
    }
}

impl ExecBackend for ShardBackend {
    fn execute(
        &self,
        kind: &QueryKind,
        seed: u64,
        engine: &PregelConfig,
    ) -> Result<QueryOutput, QueryError> {
        match *kind {
            // The router owner-routes lookups, so these normally hit the
            // local slice. A misrouted (e.g. directly submitted) lookup of
            // a non-owned vertex falls back to the full graph so the answer
            // stays correct either way.
            QueryKind::Degree(v) => {
                if (v as usize) >= self.local.num_vertices() {
                    return Err(QueryError::NoSuchVertex(v));
                }
                let g = if self.owns(v) { &self.local } else { &*self.full };
                Ok(QueryOutput::Degree(g.out_degree(v)))
            }
            QueryKind::Neighbors(v) => {
                if (v as usize) >= self.local.num_vertices() {
                    return Err(QueryError::NoSuchVertex(v));
                }
                let g = if self.owns(v) { &self.local } else { &*self.full };
                Ok(QueryOutput::Neighbors(g.out_neighbors(v).to_vec()))
            }
            QueryKind::WorkloadPartial(w) => {
                let run = vcgp_core::service::run_workload_partial(w, &self.full, engine, seed, &|v| {
                    self.owns(v)
                })
                .map_err(|e| QueryError::Unsupported(e.to_string()))?;
                Ok(QueryOutput::WorkloadPartial {
                    partial: run.partial,
                    supersteps: run.stats.supersteps(),
                    messages: run.stats.total_messages(),
                })
            }
            // Whole workloads (the primary-shard fall-back path) and the
            // debug hooks behave exactly like the single-instance service.
            _ => execute_on_full_graph(&self.full, kind, seed, engine),
        }
    }

    fn cache_key(&self, kind: &QueryKind, seed: u64) -> Option<CacheKey> {
        workload_cache_key(kind, seed, self.whole_fp, self.leg_fp)
    }
}

pub(crate) struct Shard {
    pub(crate) core: Core,
    pub(crate) owned: usize,
}

/// The resident graph served by `S` independent shard cores behind an
/// owner-routing / scatter-gather front-end (the routing itself lives in
/// [`crate::router`]).
pub struct ShardedGraphService {
    pub(crate) graph: Arc<Graph>,
    pub(crate) partitioner: Partitioner,
    pub(crate) shards: Vec<Shard>,
    /// Shard that runs non-gather-mergeable workloads whole (the documented
    /// fall-back keeping all 20 Table 1 workloads servable).
    pub(crate) primary: usize,
}

impl ShardedGraphService {
    /// Splits `graph` into `num_shards` slices — placement strategy is
    /// `config.engine.partitioning` — and spawns one [`Core`] (queue +
    /// executor pool, sized per `config`) per shard.
    pub fn start(graph: Arc<Graph>, config: ServiceConfig, num_shards: usize) -> ShardedGraphService {
        assert!(num_shards >= 1, "need at least one shard");
        let n = graph.num_vertices();
        let partitioner = Partitioner::new(config.engine.partitioning, n, num_shards);
        let whole_fp = graph_fingerprint(&graph);
        let shards = (0..num_shards)
            .map(|s| {
                let owned = (0..n as VertexId).filter(|&v| partitioner.owner(v) == s).count();
                let local = build_local_slice(&graph, &partitioner, s);
                // The slice fingerprint alone misses owned vertices with no
                // out-arcs (sinks leave no trace in the slice), so fold in
                // an order-independent hash of the owned id set — the leg
                // identity then changes under *any* ownership change.
                let owned_hash = (0..n as VertexId)
                    .filter(|&v| partitioner.owner(v) == s)
                    .fold(0u64, |acc, v| {
                        acc.wrapping_add(mix3(u64::from(v), 0x4F57_4E53, 0)) // "OWNS"
                    });
                let backend = Arc::new(ShardBackend {
                    shard: s,
                    partitioner,
                    full: Arc::clone(&graph),
                    whole_fp,
                    leg_fp: leg_fingerprint(
                        whole_fp,
                        mix3(graph_fingerprint(&local), owned_hash, 0x534C_4943), // "SLIC"
                    ),
                    local,
                });
                Shard {
                    core: Core::start(backend, &config, &format!("shard{s}")),
                    owned,
                }
            })
            .collect();
        ShardedGraphService {
            graph,
            partitioner,
            shards,
            primary: 0,
        }
    }

    /// The resident graph.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns vertex `v` (total: out-of-range ids still map to
    /// a shard, which answers [`QueryError::NoSuchVertex`]).
    pub fn owner(&self, v: VertexId) -> usize {
        self.partitioner.owner(v).min(self.shards.len() - 1)
    }

    /// Per-shard identity + counters, for the stress report's occupancy and
    /// drop columns.
    pub fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        self.shards
            .iter()
            .enumerate()
            .map(|(s, sh)| ShardSnapshot {
                shard: s,
                owned: sh.owned,
                stats: sh.core.stats(),
            })
            .collect()
    }

    /// Counters folded across every shard (high-water marks take the max).
    pub fn stats(&self) -> ServiceStats {
        let mut total = ServiceStats::default();
        for sh in &self.shards {
            total.absorb(&sh.core.stats());
        }
        total
    }

    /// Drops every shard's result-cache entries. The invalidation hook that
    /// any future graph swap or live re-shard must fire before serving
    /// resumes (a no-op when caching is disabled).
    pub fn invalidate_cache(&self) {
        for sh in &self.shards {
            sh.core.invalidate_cache();
        }
    }

    /// Stops admissions on every shard; accepted requests still drain.
    pub fn close(&self) {
        for sh in &self.shards {
            sh.core.close();
        }
    }

    /// Closes every shard and blocks until all executors drained, returning
    /// the folded counters.
    pub fn shutdown(mut self) -> ServiceStats {
        for sh in &self.shards {
            sh.core.close();
        }
        let mut total = ServiceStats::default();
        for sh in &mut self.shards {
            sh.core.join();
            total.absorb(&sh.core.stats());
        }
        total
    }

    /// Pending requests per shard queue.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.shards.iter().map(|sh| sh.core.queue_depth()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::generators;
    use vcgp_pregel::partition::Partitioning;

    #[test]
    fn local_slice_preserves_owned_adjacency() {
        let g = generators::gnm_connected(40, 90, 11);
        for strategy in [Partitioning::Hash, Partitioning::Range] {
            let p = Partitioner::new(strategy, g.num_vertices(), 3);
            for s in 0..3 {
                let local = build_local_slice(&g, &p, s);
                assert_eq!(local.num_vertices(), g.num_vertices());
                for v in 0..g.num_vertices() as VertexId {
                    if p.owner(v) == s {
                        assert_eq!(local.out_neighbors(v), g.out_neighbors(v), "v={v}");
                        assert_eq!(local.out_weights(v), g.out_weights(v), "v={v}");
                    } else {
                        assert!(local.out_neighbors(v).is_empty(), "v={v} not owned");
                    }
                }
            }
        }
    }

    #[test]
    fn every_vertex_owned_by_exactly_one_shard() {
        let g = generators::gnm_connected(33, 70, 5);
        for strategy in [Partitioning::Hash, Partitioning::Range] {
            let p = Partitioner::new(strategy, g.num_vertices(), 4);
            let mut owned = vec![0usize; g.num_vertices()];
            for s in 0..4 {
                for v in 0..g.num_vertices() as VertexId {
                    if p.owner(v) == s {
                        owned[v as usize] += 1;
                    }
                }
            }
            assert!(owned.iter().all(|&c| c == 1));
        }
    }
}
