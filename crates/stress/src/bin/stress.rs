//! `stress` — drive a resident [`GraphService`] with a concurrent,
//! rate-limited, seeded operation mix and report latency histograms.
//!
//! ```text
//! stress [--gen SPEC | --graph FILE [--directed]]
//!        [--scenario FILE] [--interval-ms N]
//!        [--duration SECS] [--ops N] [--rate OPS_S] [--burst N]
//!        [--clients N] [--executors N] [--queue N] [--shards N]
//!        [--replicas N] [--routing round-robin|least-loaded]
//!        [--queue-policy block|reject]
//!        [--cache-capacity N] [--cache-off] [--repeat N]
//!        [--mix points|mixed|analytics|hotspot|scatter] [--seed N]
//!        [--zipf-s S] [--write-ratio R] [--mutation-seed N]
//!        [--write-buffer N] [--max-batch N]
//!        [--timeout-ms N] [--retries N] [--name NAME] [--quiet]
//! stress --validate-report FILE
//! ```
//!
//! Generator specs (colon-separated): `gnm-connected:N:M:SEED`,
//! `digraph:N:M:SEED`, `labeled:N:M:LABELS:SEED`, `tree:N:SEED`,
//! `bipartite:NL:NR`. Default `gnm-connected:512:2048:7`.
//!
//! Reports are written as `BENCH_stress_<name>.json` / `.md` through the
//! `vcgp-testkit` emitters (into `$VCGP_BENCH_DIR` or `target/vcgp-bench`).
//! `--validate-report` re-reads a JSON report, checks it is well formed,
//! and exits non-zero unless its `errors` count is zero — the CI gate.

use std::process::exit;
use std::sync::Arc;
use std::time::Duration;
use vcgp_graph::{generators, io, Graph};
use vcgp_stress::driver::{self, DriverConfig};
use vcgp_stress::epoch::MutationConfig;
use vcgp_stress::json;
use vcgp_stress::mix::Mix;
use vcgp_stress::router::RoutingPolicy;
use vcgp_stress::scenario::{Scenario, ScenarioSpec};
use vcgp_stress::service::{GraphService, QueueFullPolicy, ServiceConfig};
use vcgp_stress::shard::ShardedGraphService;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return;
    }
    if let Some(path) = flag_value(&args, "--validate-report") {
        match validate_report(path) {
            Ok(summary) => println!("{summary}"),
            Err(msg) => {
                eprintln!("error: {msg}");
                exit(1);
            }
        }
        return;
    }
    if let Err(msg) = run(&args) {
        eprintln!("error: {msg}");
        exit(2);
    }
}

fn usage() {
    eprintln!(
        "stress — concurrent, rate-limited load against a resident graph service\n\n\
         USAGE:\n  stress [--gen SPEC | --graph FILE [--directed]] [options]\n  \
         stress --validate-report FILE\n\n\
         OPTIONS:\n  \
         --gen SPEC        gnm-connected:N:M:SEED | digraph:N:M:SEED |\n                    \
         labeled:N:M:LABELS:SEED | tree:N:SEED | bipartite:NL:NR\n  \
         --graph FILE      edge-list file (--directed to read as a digraph)\n  \
         --scenario FILE   declarative load spec: named phases with their own\n                    \
         stop criteria (duration and/or op count), rates,\n                    \
         client counts, and weighted op mixes over seeded key\n                    \
         distributions (see README \"Scenario engine\" for the\n                    \
         grammar and examples/scenarios/). Supersedes --mix,\n                    \
         --duration, --ops, --rate, --write-ratio; unset spec\n                    \
         fields inherit the matching CLI flags\n  \
         --interval-ms N   interval-log slot width in milliseconds\n                    \
         (default 1000); per-interval latency histograms fold\n                    \
         exactly to the end-of-run totals\n  \
         --duration SECS   wall-clock run length (default 2)\n  \
         --ops N           stop after exactly N operations\n  \
         --rate OPS_S      token-bucket pacing; omit for max throughput\n  \
         --burst N         bucket burst allowance (default 1)\n  \
         --clients N       concurrent client threads (default 4)\n  \
         --executors N     service executor threads (default: cores, max 4)\n  \
         --queue N         service queue capacity, per shard (default 128)\n  \
         --shards N        shard the service N ways (default 1 = unsharded)\n  \
         --replicas N      replica cores per shard (default 1). Each replica\n                    \
         is a full queue + executor pool over the SAME\n                    \
         epoch-pinned shard slice, so answers are identical\n                    \
         for any replica count; only tail latency changes\n  \
         --routing P       replica pick within a shard: round-robin\n                    \
         (seeded, deterministic sequence) | least-loaded\n                    \
         (smallest queue depth, ties to the lowest replica\n                    \
         id). Default round-robin\n  \
         --queue-policy P  block (backpressure) | reject (shed) when full\n  \
         --cache-capacity N  result-cache entries per shard core (default 256)\n  \
         --cache-off       disable the result cache (same as capacity 0)\n  \
         --repeat N        run the mix N times against the SAME service\n                    \
         process (pass 2+ replays the identical seeded stream,\n                    \
         so cache hits become observable); reports are named\n                    \
         stress_<name>-pass<i> when N > 1\n  \
         --mix NAME        points | mixed | analytics | hotspot | scatter\n                    \
         (default points)\n  \
         --seed N          operation-stream seed (default 7)\n  \
         --zipf-s S        draw point-lookup keys zipfian with exponent S\n                    \
         (rank 0 = vertex 0 = hottest; composes with the\n                    \
         hotspot span and range placement). Deterministic\n                    \
         per (seed, index); omit for the uniform draw\n  \
         --write-ratio R   fraction of stream indices issuing a mutation\n                    \
         instead of a query (0.0..=1.0, default 0).\n                    \
         Passing the flag (even 0) starts the epoch\n                    \
         writer; 0 issues no writes, so the run stays\n                    \
         bit-identical to a frozen (no-flag) run\n  \
         --mutation-seed N seed of the write-decision + mutation stream\n                    \
         (default 11; independent of --seed)\n  \
         --write-buffer N  bounded write-buffer capacity (default 1024;\n                    \
         accepts block when full)\n  \
         --max-batch N     max mutations applied per epoch swap (default 64)\n  \
         --timeout-ms N    per-attempt timeout (default 5000)\n  \
         --retries N       max attempts per request (default 3)\n  \
         --name NAME       report name: BENCH_stress_<name>.* (default run)\n  \
         --quiet           one-line summary instead of the full table\n\n\
         ENVIRONMENT:\n  \
         VCGP_WORKERS      engine logical worker count for analytics runs\n                    \
         (positive integer, capped at 1024; default: CPU count).\n                    \
         Answers are identical for any worker count.\n  \
         VCGP_THREADS      OS threads driving those workers (0 = auto:\n                    \
         min(workers, cores)). Answers are thread-count\n                    \
         independent; only wall clock changes.\n  \
         VCGP_STEAL_CHUNK  work-stealing chunk size in vertices (default\n                    \
         1024; 0 disables stealing). Deterministic for any\n                    \
         value.\n  \
         VCGP_PARTITIONING engine + shard placement strategy: hash | range\n                    \
         (default hash). Applies to both engine workers and\n                    \
         shard vertex ownership (--shards)."
    );
}

fn flag_value<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid {what}: {s:?}"))
}

fn parse_flag<T: std::str::FromStr>(
    args: &[String],
    key: &str,
    default: T,
) -> Result<T, String> {
    match flag_value(args, key) {
        Some(s) => parse(s, key),
        None => Ok(default),
    }
}

fn build_graph(args: &[String]) -> Result<Graph, String> {
    if let Some(path) = flag_value(args, "--graph") {
        let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        let directed = args.iter().any(|a| a == "--directed");
        return io::read_edge_list(std::io::BufReader::new(file), directed)
            .map_err(|e| format!("parse {path}: {e}"));
    }
    let spec = flag_value(args, "--gen").unwrap_or("gnm-connected:512:2048:7");
    let parts: Vec<&str> = spec.split(':').collect();
    let p = |i: usize, what: &str| -> Result<usize, String> {
        parse(parts.get(i).copied().ok_or_else(|| format!("--gen missing {what}"))?, what)
    };
    let s = |i: usize| -> Result<u64, String> {
        parse(parts.get(i).copied().ok_or("--gen missing seed")?, "seed")
    };
    match parts[0] {
        "gnm-connected" => Ok(generators::gnm_connected(p(1, "n")?, p(2, "m")?, s(3)?)),
        "digraph" => Ok(generators::digraph_gnm(p(1, "n")?, p(2, "m")?, s(3)?)),
        "labeled" => Ok(generators::labeled_digraph(
            p(1, "n")?,
            p(2, "m")?,
            parse(parts.get(3).copied().ok_or("--gen missing labels")?, "labels")?,
            s(4)?,
        )),
        "tree" => Ok(generators::random_tree(p(1, "n")?, s(2)?)),
        "bipartite" => Ok(generators::complete_bipartite(p(1, "nl")?, p(2, "nr")?)),
        other => Err(format!("unknown generator {other:?}")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let quiet = args.iter().any(|a| a == "--quiet");
    let name = flag_value(args, "--name").unwrap_or("run");
    let graph = Arc::new(build_graph(args)?);
    let mut mix = Mix::preset(flag_value(args, "--mix").unwrap_or("points"), &graph)?;
    if let Some(s) = flag_value(args, "--zipf-s") {
        mix = mix.with_zipf(parse(s, "--zipf-s")?)?;
    }

    let shards: usize = parse_flag(args, "--shards", 1usize)?;
    if shards < 1 {
        return Err("--shards must be at least 1".to_string());
    }
    let replicas: usize = parse_flag(args, "--replicas", 1usize)?;
    if replicas < 1 {
        return Err("--replicas must be at least 1".to_string());
    }
    let repeat: usize = parse_flag(args, "--repeat", 1usize)?;
    if repeat < 1 {
        return Err("--repeat must be at least 1".to_string());
    }
    let cache_capacity = if args.iter().any(|a| a == "--cache-off") {
        0
    } else {
        parse_flag(args, "--cache-capacity", ServiceConfig::default().cache_capacity)?
    };
    let write_ratio: f64 = parse_flag(args, "--write-ratio", 0.0f64)?;
    if !(0.0..=1.0).contains(&write_ratio) {
        return Err("--write-ratio must be within 0.0..=1.0".to_string());
    }
    let driver_cfg = DriverConfig {
        clients: parse_flag(args, "--clients", 4usize)?,
        duration: Duration::from_secs_f64(parse_flag(args, "--duration", 2.0f64)?),
        ops_limit: flag_value(args, "--ops").map(|s| parse(s, "--ops")).transpose()?,
        rate: flag_value(args, "--rate").map(|s| parse(s, "--rate")).transpose()?,
        burst: parse_flag(args, "--burst", 1u32)?,
        seed: parse_flag(args, "--seed", 7u64)?,
        timeout: Duration::from_millis(parse_flag(args, "--timeout-ms", 5000u64)?),
        write_ratio,
        mutation_seed: parse_flag(args, "--mutation-seed", 11u64)?,
        interval: Duration::from_millis(parse_flag(args, "--interval-ms", 1000u64)?.max(1)),
    };
    // A scenario file supersedes the preset mix and stream shape; spec
    // fields left unset inherit the matching CLI flags, so e.g. `--seed`
    // still varies a seedless scenario file.
    let scenario: Option<Scenario> = match flag_value(args, "--scenario") {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            let mut spec = ScenarioSpec::parse(&text).map_err(|e| format!("{path}: {e}"))?;
            spec.seed.get_or_insert(driver_cfg.seed);
            spec.mutation_seed.get_or_insert(driver_cfg.mutation_seed);
            spec.clients.get_or_insert(driver_cfg.clients);
            spec.burst.get_or_insert(driver_cfg.burst);
            spec.rate = spec.rate.or(driver_cfg.rate);
            spec.timeout_ms
                .get_or_insert(driver_cfg.timeout.as_millis() as u64);
            spec.interval_ms
                .get_or_insert(driver_cfg.interval.as_millis() as u64);
            Some(spec.resolve(&graph).map_err(|e| format!("{path}: {e}"))?)
        }
        None => None,
    };
    // Passing --write-ratio at all (even 0) starts the epoch writer, so a
    // `--write-ratio 0` run exercises the full mutation machinery while
    // issuing no writes — the CI gate that proves the write path is inert
    // on the read stream. A scenario with a mutate op weight starts the
    // writer too. Otherwise the service stays read-only.
    let mutations = if flag_value(args, "--write-ratio").is_some()
        || scenario.as_ref().is_some_and(Scenario::has_writes)
    {
        Some(MutationConfig {
            write_buffer: parse_flag(args, "--write-buffer", MutationConfig::default().write_buffer)?,
            max_batch: parse_flag(args, "--max-batch", MutationConfig::default().max_batch)?,
            keep_history: false,
        })
    } else {
        None
    };
    let service_cfg = ServiceConfig {
        executors: parse_flag(args, "--executors", ServiceConfig::default().executors)?,
        queue_capacity: parse_flag(args, "--queue", 128usize)?,
        queue_policy: flag_value(args, "--queue-policy")
            .map(QueueFullPolicy::parse)
            .transpose()?
            .unwrap_or_default(),
        max_attempts: parse_flag(args, "--retries", 3u32)?,
        seed: parse_flag(args, "--seed", 7u64)?,
        cache_capacity,
        mutations,
        replicas,
        routing: flag_value(args, "--routing")
            .map(RoutingPolicy::parse)
            .transpose()?
            .unwrap_or_default(),
        ..ServiceConfig::default()
    };
    if !quiet {
        let load = match &scenario {
            Some(s) => format!("scenario {} ({} phases)", s.name, s.phases.len()),
            None => format!("mix {} ({} workloads)", mix.name(), mix.workloads().len()),
        };
        println!(
            "graph: n={} m={} {} | {} | {} clients, {} executors, \
             {} shard{} x {} replica{} ({})",
            graph.num_vertices(),
            graph.num_edges(),
            if graph.is_directed() { "directed" } else { "undirected" },
            load,
            driver_cfg.clients,
            service_cfg.executors,
            shards,
            if shards == 1 { "" } else { "s" },
            replicas,
            if replicas == 1 { "" } else { "s" },
            service_cfg.routing.label(),
        );
    }

    // --repeat runs the same seeded stream against the SAME service process:
    // pass 1 warms the result cache, later passes hit it, and the per-pass
    // reports (scoped by the driver's counter baseline) make both the hit
    // counts and the answer hashes comparable.
    let reports = if shards > 1 || replicas > 1 {
        let service = ShardedGraphService::start(Arc::clone(&graph), service_cfg, shards);
        let reports: Vec<_> = (0..repeat)
            .map(|_| match &scenario {
                Some(s) => driver::run_scenario(&service, s),
                None => driver::run(&service, &mix, &driver_cfg),
            })
            .collect();
        service.shutdown();
        reports
    } else {
        let service = GraphService::start(Arc::clone(&graph), service_cfg);
        let reports: Vec<_> = (0..repeat)
            .map(|_| match &scenario {
                Some(s) => driver::run_scenario(&service, s),
                None => driver::run(&service, &mix, &driver_cfg),
            })
            .collect();
        service.shutdown();
        reports
    };

    for (pass, report) in reports.iter().enumerate() {
        let report_name = if repeat == 1 {
            format!("stress_{name}")
        } else {
            format!("stress_{name}-pass{}", pass + 1)
        };
        let json_text = report.to_json(&report_name);
        let md_text = report.to_markdown(&report_name);
        // Self-check before writing: the report must parse with our own reader.
        json::parse(&json_text).map_err(|e| format!("internal: emitted invalid JSON: {e}"))?;
        let (json_path, md_path) =
            vcgp_testkit::bench::write_report(&report_name, &json_text, &md_text)
                .map_err(|e| format!("write report: {e}"))?;

        if quiet {
            println!(
                "{}: {} ops, {} errors, {:.1} ops/s, p99 {:.3} ms, {} cache hits, \
                 answers {:016x} -> {}",
                report_name,
                report.ops,
                report.errors,
                report.throughput(),
                report.latency.quantile(0.99) as f64 / 1e6,
                report.cache_hits,
                report.answer_hash,
                json_path.display()
            );
        } else {
            println!("\n{md_text}");
            println!("reports: {} and {}", json_path.display(), md_path.display());
        }
    }
    Ok(())
}

/// Sums an interval-series array's sparse rows (count, ok, errors),
/// checking each row's shape and its internal `count == ok + errors`
/// identity on the way.
fn interval_sums(parent: &json::Value, key: &str) -> Result<(f64, f64, f64), String> {
    let rows = match parent.get(key) {
        Some(json::Value::Array(rows)) => rows,
        Some(_) => return Err(format!("{key} is not an array")),
        None => return Err(format!("missing {key:?}")),
    };
    let (mut count, mut ok, mut errors) = (0.0, 0.0, 0.0);
    for (r, row) in rows.iter().enumerate() {
        let get = |k: &str| -> Result<f64, String> {
            row.get(k)
                .and_then(json::Value::as_f64)
                .ok_or_else(|| format!("{key}[{r}] missing numeric {k:?}"))
        };
        for k in ["i", "p50", "p99", "max"] {
            get(k)?;
        }
        let (c, o, e) = (get("count")?, get("ok")?, get("errors")?);
        if c != o + e {
            return Err(format!("{key}[{r}] count {c} != ok {o} + errors {e}"));
        }
        count += c;
        ok += o;
        errors += e;
    }
    Ok((count, ok, errors))
}

/// Parses a JSON report and enforces the CI gate: well formed, has the
/// expected shape, completed at least one operation, and zero errors.
fn validate_report(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: malformed JSON: {e}"))?;
    let num = |key: &str| -> Result<f64, String> {
        doc.get(key)
            .and_then(json::Value::as_f64)
            .ok_or_else(|| format!("{path}: missing numeric field {key:?}"))
    };
    for key in ["latency_ns", "service_ns", "gather_ns"] {
        let h = doc.get(key).ok_or_else(|| format!("{path}: missing {key:?}"))?;
        for q in ["p50", "p90", "p99", "p999", "max"] {
            h.get(q)
                .and_then(json::Value::as_f64)
                .ok_or_else(|| format!("{path}: missing {key}.{q}"))?;
        }
    }
    let shards = num("shards")?;
    let replicas = num("replicas")?;
    if replicas < 1.0 {
        return Err(format!("{path}: replicas is {replicas} (expected >= 1)"));
    }
    match doc.get("routing") {
        Some(json::Value::String(_)) => {}
        Some(_) => return Err(format!("{path}: routing is not a string")),
        None => return Err(format!("{path}: missing \"routing\"")),
    }
    for key in ["routed", "scattered", "rejects", "early_drops"] {
        num(key)?;
    }
    // The answer hash is emitted as a 16-digit hex string (u64 does not fit
    // an f64 exactly).
    match doc.get("answer_hash") {
        Some(json::Value::String(s))
            if s.len() == 16 && s.chars().all(|c| c.is_ascii_hexdigit()) => {}
        Some(_) => return Err(format!("{path}: answer_hash is not a 16-digit hex string")),
        None => return Err(format!("{path}: missing \"answer_hash\"")),
    }
    // The result-cache section: all counters present and internally
    // consistent (hits + misses = all cacheable lookups ≥ insertions).
    let cache = doc.get("cache").ok_or_else(|| format!("{path}: missing \"cache\""))?;
    let cache_num = |key: &str| -> Result<f64, String> {
        cache
            .get(key)
            .and_then(json::Value::as_f64)
            .ok_or_else(|| format!("{path}: missing numeric field cache.{key:?}"))
    };
    cache_num("hits")?;
    let misses = cache_num("misses")?;
    let insertions = cache_num("insertions")?;
    for key in ["evictions", "resident_bytes"] {
        cache_num(key)?;
    }
    if insertions > misses {
        return Err(format!(
            "{path}: cache.insertions ({insertions}) exceeds cache.misses ({misses})"
        ));
    }
    // The freshness section: writer counters plus the four freshness
    // histograms, with the count identities the epoch subsystem guarantees
    // (every swap records exactly one pause and one lag sample; every
    // mutation leaving the buffer is applied or a no-op; every accepted
    // write records one accept latency).
    let writes = num("writes")?;
    let write_errors = num("write_errors")?;
    let epochs = doc.get("epochs").ok_or_else(|| format!("{path}: missing \"epochs\""))?;
    let epoch_num = |key: &str| -> Result<f64, String> {
        epochs
            .get(key)
            .and_then(json::Value::as_f64)
            .ok_or_else(|| format!("{path}: missing numeric field epochs.{key:?}"))
    };
    for key in ["epoch", "accepted", "pending"] {
        epoch_num(key)?;
    }
    let swaps = epoch_num("swaps")?;
    let applied = epoch_num("applied")?;
    let noops = epoch_num("noops")?;
    let hist_count = |key: &str| -> Result<f64, String> {
        let h = epochs.get(key).ok_or_else(|| format!("{path}: missing epochs.{key:?}"))?;
        for q in ["count", "min", "mean", "p50", "p90", "p99", "p999", "max"] {
            h.get(q)
                .and_then(json::Value::as_f64)
                .ok_or_else(|| format!("{path}: missing epochs.{key}.{q}"))?;
        }
        h.get("count")
            .and_then(json::Value::as_f64)
            .ok_or_else(|| format!("{path}: missing epochs.{key}.count"))
    };
    for (key, expect, what) in [
        ("swap_pause_ns", swaps, "swaps"),
        ("freshness_lag_ns", swaps, "swaps"),
        ("write_apply_ns", applied + noops, "applied + noops"),
        ("write_accept_ns", writes - write_errors, "writes - write_errors"),
    ] {
        let count = hist_count(key)?;
        if count != expect {
            return Err(format!(
                "{path}: epochs.{key}.count is {count} but {what} is {expect}"
            ));
        }
    }
    // Per-shard occupancy: one entry per shard, each with identity and
    // counter fields.
    let per_shard = match doc.get("per_shard") {
        Some(json::Value::Array(entries)) => entries,
        Some(_) => return Err(format!("{path}: per_shard is not an array")),
        None => return Err(format!("{path}: missing \"per_shard\"")),
    };
    if per_shard.len() != shards as usize {
        return Err(format!(
            "{path}: per_shard has {} entries for {} shards",
            per_shard.len(),
            shards
        ));
    }
    for (i, entry) in per_shard.iter().enumerate() {
        for key in [
            "shard",
            "owned",
            "completed",
            "failed",
            "rejects",
            "early_drops",
            "cache_hits",
            "queue_hwm",
            "busy_ns",
        ] {
            entry
                .get(key)
                .and_then(json::Value::as_f64)
                .ok_or_else(|| format!("{path}: per_shard[{i}] missing {key:?}"))?;
        }
        // Per-replica rows: one per replica core, and the shard-level
        // counters must be exactly the fold of its replicas (completed
        // sums; queue_hwm is a max over independent queues).
        let rows = match entry.get("replicas") {
            Some(json::Value::Array(rows)) => rows,
            Some(_) => return Err(format!("{path}: per_shard[{i}].replicas is not an array")),
            None => return Err(format!("{path}: per_shard[{i}] missing \"replicas\"")),
        };
        if rows.len() != replicas as usize {
            return Err(format!(
                "{path}: per_shard[{i}] has {} replica rows for {} replicas",
                rows.len(),
                replicas
            ));
        }
        let mut sum_completed = 0.0;
        let mut max_hwm = 0.0f64;
        let mut sum_service = 0.0;
        for (r, row) in rows.iter().enumerate() {
            for key in ["replica", "completed", "failed", "queue_hwm", "busy_ns"] {
                row.get(key)
                    .and_then(json::Value::as_f64)
                    .ok_or_else(|| {
                        format!("{path}: per_shard[{i}].replicas[{r}] missing {key:?}")
                    })?;
            }
            sum_completed += row.get("completed").and_then(json::Value::as_f64).unwrap();
            max_hwm = max_hwm.max(row.get("queue_hwm").and_then(json::Value::as_f64).unwrap());
            // The replica's measured service-time histogram and its interval
            // series: the series must fold exactly back to the histogram
            // (same recorder, one call per execution).
            let service_count = row
                .get("service_ns")
                .and_then(|h| h.get("count"))
                .and_then(json::Value::as_f64)
                .ok_or_else(|| {
                    format!("{path}: per_shard[{i}].replicas[{r}] missing service_ns.count")
                })?;
            sum_service += service_count;
            let interval_count = interval_sums(row, "intervals")
                .map_err(|e| format!("{path}: per_shard[{i}].replicas[{r}] {e}"))?
                .0;
            if interval_count != service_count {
                return Err(format!(
                    "{path}: per_shard[{i}].replicas[{r}] intervals sum to \
                     {interval_count} but service_ns.count is {service_count}"
                ));
            }
        }
        // The shard's service histogram is defined as the merge of its
        // replicas' — counts must agree exactly.
        let shard_service = entry
            .get("service_ns")
            .and_then(|h| h.get("count"))
            .and_then(json::Value::as_f64)
            .ok_or_else(|| format!("{path}: per_shard[{i}] missing service_ns.count"))?;
        if shard_service != sum_service {
            return Err(format!(
                "{path}: per_shard[{i}].service_ns.count is {shard_service} but replica \
                 histograms sum to {sum_service}"
            ));
        }
        let shard_completed =
            entry.get("completed").and_then(json::Value::as_f64).unwrap();
        if shard_completed != sum_completed {
            return Err(format!(
                "{path}: per_shard[{i}].completed is {shard_completed} but replica rows \
                 sum to {sum_completed}"
            ));
        }
        let shard_hwm = entry.get("queue_hwm").and_then(json::Value::as_f64).unwrap();
        if shard_hwm != max_hwm {
            return Err(format!(
                "{path}: per_shard[{i}].queue_hwm is {shard_hwm} but replica rows max \
                 to {max_hwm}"
            ));
        }
    }
    // The top-level drop counters are defined as per-shard sums — hold the
    // report to that. Same for cache hits: the cache section's hit count is
    // the sum of each shard core's run-scoped delta.
    for (total, total_key, shard_key) in [
        (num("rejects")?, "rejects", "rejects"),
        (num("early_drops")?, "early_drops", "early_drops"),
        (cache_num("hits")?, "cache.hits", "cache_hits"),
    ] {
        let summed: f64 = per_shard
            .iter()
            .filter_map(|e| e.get(shard_key).and_then(json::Value::as_f64))
            .sum();
        if total != summed {
            return Err(format!(
                "{path}: {total_key} is {total} but per_shard sums to {summed}"
            ));
        }
    }
    // The scenario section: phases present, and the run-level counters are
    // the exact fold of the phase counters (sums, XOR for the answer hash),
    // while each phase's interval series folds exactly to its own totals.
    match doc.get("scenario") {
        Some(json::Value::String(_)) => {}
        Some(_) => return Err(format!("{path}: scenario is not a string")),
        None => return Err(format!("{path}: missing \"scenario\"")),
    }
    num("interval_ms")?;
    let phases = match doc.get("phases") {
        Some(json::Value::Array(entries)) if !entries.is_empty() => entries,
        Some(json::Value::Array(_)) => return Err(format!("{path}: phases is empty")),
        Some(_) => return Err(format!("{path}: phases is not an array")),
        None => return Err(format!("{path}: missing \"phases\"")),
    };
    let parse_hash = |v: Option<&json::Value>, what: &str| -> Result<u64, String> {
        match v {
            Some(json::Value::String(s)) if s.len() == 16 => u64::from_str_radix(s, 16)
                .map_err(|_| format!("{path}: {what} is not a hex hash")),
            _ => Err(format!("{path}: {what} is not a 16-digit hex string")),
        }
    };
    let mut fold = [0.0f64; 4]; // ops, ok, errors, writes
    let mut fold_hash = 0u64;
    for (pi, phase) in phases.iter().enumerate() {
        match phase.get("phase") {
            Some(json::Value::String(_)) => {}
            _ => return Err(format!("{path}: phases[{pi}] missing \"phase\" name")),
        }
        let pnum = |key: &str| -> Result<f64, String> {
            phase
                .get(key)
                .and_then(json::Value::as_f64)
                .ok_or_else(|| format!("{path}: phases[{pi}] missing numeric {key:?}"))
        };
        for key in [
            "clients",
            "start_s",
            "elapsed_s",
            "unsupported",
            "timeouts",
            "retries",
            "routed",
            "scattered",
            "write_errors",
        ] {
            pnum(key)?;
        }
        let (p_ops, p_ok, p_errors, p_writes) =
            (pnum("ops")?, pnum("ok")?, pnum("errors")?, pnum("writes")?);
        fold[0] += p_ops;
        fold[1] += p_ok;
        fold[2] += p_errors;
        fold[3] += p_writes;
        fold_hash ^= parse_hash(
            phase.get("answer_hash"),
            &format!("phases[{pi}].answer_hash"),
        )?;
        // Every completed operation lands in exactly one interval slot and
        // in the phase latency histogram, so the sums must match exactly.
        let latency_count = phase
            .get("latency_ns")
            .and_then(|h| h.get("count"))
            .and_then(json::Value::as_f64)
            .ok_or_else(|| format!("{path}: phases[{pi}] missing latency_ns.count"))?;
        if latency_count != p_ops {
            return Err(format!(
                "{path}: phases[{pi}].latency_ns.count is {latency_count} but ops is {p_ops}"
            ));
        }
        let (icount, iok, ierrors) =
            interval_sums(phase, "intervals").map_err(|e| format!("{path}: phases[{pi}] {e}"))?;
        for (got, want, what) in [
            (icount, p_ops, "ops"),
            (iok, p_ok, "ok"),
            (ierrors, p_errors, "errors"),
        ] {
            if got != want {
                return Err(format!(
                    "{path}: phases[{pi}] intervals sum to {got} but {what} is {want}"
                ));
            }
        }
        if p_ops >= 1.0 && icount < 1.0 {
            return Err(format!("{path}: phases[{pi}] completed ops but has no intervals"));
        }
    }
    let top_hash = parse_hash(doc.get("answer_hash"), "answer_hash")?;
    if fold_hash != top_hash {
        return Err(format!(
            "{path}: phase answer hashes fold to {fold_hash:016x} but the run hash is \
             {top_hash:016x}"
        ));
    }
    for (sum, key) in fold.iter().zip(["ops", "ok", "errors", "writes"]) {
        let total = num(key)?;
        if *sum != total {
            return Err(format!(
                "{path}: phases sum {key} to {sum} but the run total is {total}"
            ));
        }
    }
    let ops = num("ops")?;
    let errors = num("errors")?;
    if ops < 1.0 {
        return Err(format!("{path}: no operations completed"));
    }
    if errors != 0.0 {
        return Err(format!("{path}: {errors} errored requests (expected 0)"));
    }
    Ok(format!(
        "{path}: ok ({} ops, 0 errors, {:.1} ops/s)",
        ops as u64,
        num("throughput_ops_s")?
    ))
}
