//! `stress` — drive a resident [`GraphService`] with a concurrent,
//! rate-limited, seeded operation mix and report latency histograms.
//!
//! ```text
//! stress [--gen SPEC | --graph FILE [--directed]]
//!        [--duration SECS] [--ops N] [--rate OPS_S] [--burst N]
//!        [--clients N] [--executors N] [--queue N] [--shards N]
//!        [--replicas N] [--routing round-robin|least-loaded]
//!        [--queue-policy block|reject]
//!        [--cache-capacity N] [--cache-off] [--repeat N]
//!        [--mix points|mixed|analytics|hotspot|scatter] [--seed N]
//!        [--zipf-s S] [--write-ratio R] [--mutation-seed N]
//!        [--write-buffer N] [--max-batch N]
//!        [--timeout-ms N] [--retries N] [--name NAME] [--quiet]
//! stress --validate-report FILE
//! ```
//!
//! Generator specs (colon-separated): `gnm-connected:N:M:SEED`,
//! `digraph:N:M:SEED`, `labeled:N:M:LABELS:SEED`, `tree:N:SEED`,
//! `bipartite:NL:NR`. Default `gnm-connected:512:2048:7`.
//!
//! Reports are written as `BENCH_stress_<name>.json` / `.md` through the
//! `vcgp-testkit` emitters (into `$VCGP_BENCH_DIR` or `target/vcgp-bench`).
//! `--validate-report` re-reads a JSON report, checks it is well formed,
//! and exits non-zero unless its `errors` count is zero — the CI gate.

use std::process::exit;
use std::sync::Arc;
use std::time::Duration;
use vcgp_graph::{generators, io, Graph};
use vcgp_stress::driver::{self, DriverConfig};
use vcgp_stress::epoch::MutationConfig;
use vcgp_stress::json;
use vcgp_stress::mix::Mix;
use vcgp_stress::router::RoutingPolicy;
use vcgp_stress::service::{GraphService, QueueFullPolicy, ServiceConfig};
use vcgp_stress::shard::ShardedGraphService;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return;
    }
    if let Some(path) = flag_value(&args, "--validate-report") {
        match validate_report(path) {
            Ok(summary) => println!("{summary}"),
            Err(msg) => {
                eprintln!("error: {msg}");
                exit(1);
            }
        }
        return;
    }
    if let Err(msg) = run(&args) {
        eprintln!("error: {msg}");
        exit(2);
    }
}

fn usage() {
    eprintln!(
        "stress — concurrent, rate-limited load against a resident graph service\n\n\
         USAGE:\n  stress [--gen SPEC | --graph FILE [--directed]] [options]\n  \
         stress --validate-report FILE\n\n\
         OPTIONS:\n  \
         --gen SPEC        gnm-connected:N:M:SEED | digraph:N:M:SEED |\n                    \
         labeled:N:M:LABELS:SEED | tree:N:SEED | bipartite:NL:NR\n  \
         --graph FILE      edge-list file (--directed to read as a digraph)\n  \
         --duration SECS   wall-clock run length (default 2)\n  \
         --ops N           stop after exactly N operations\n  \
         --rate OPS_S      token-bucket pacing; omit for max throughput\n  \
         --burst N         bucket burst allowance (default 1)\n  \
         --clients N       concurrent client threads (default 4)\n  \
         --executors N     service executor threads (default: cores, max 4)\n  \
         --queue N         service queue capacity, per shard (default 128)\n  \
         --shards N        shard the service N ways (default 1 = unsharded)\n  \
         --replicas N      replica cores per shard (default 1). Each replica\n                    \
         is a full queue + executor pool over the SAME\n                    \
         epoch-pinned shard slice, so answers are identical\n                    \
         for any replica count; only tail latency changes\n  \
         --routing P       replica pick within a shard: round-robin\n                    \
         (seeded, deterministic sequence) | least-loaded\n                    \
         (smallest queue depth, ties to the lowest replica\n                    \
         id). Default round-robin\n  \
         --queue-policy P  block (backpressure) | reject (shed) when full\n  \
         --cache-capacity N  result-cache entries per shard core (default 256)\n  \
         --cache-off       disable the result cache (same as capacity 0)\n  \
         --repeat N        run the mix N times against the SAME service\n                    \
         process (pass 2+ replays the identical seeded stream,\n                    \
         so cache hits become observable); reports are named\n                    \
         stress_<name>-pass<i> when N > 1\n  \
         --mix NAME        points | mixed | analytics | hotspot | scatter\n                    \
         (default points)\n  \
         --seed N          operation-stream seed (default 7)\n  \
         --zipf-s S        draw point-lookup keys zipfian with exponent S\n                    \
         (rank 0 = vertex 0 = hottest; composes with the\n                    \
         hotspot span and range placement). Deterministic\n                    \
         per (seed, index); omit for the uniform draw\n  \
         --write-ratio R   fraction of stream indices issuing a mutation\n                    \
         instead of a query (0.0..=1.0, default 0).\n                    \
         Passing the flag (even 0) starts the epoch\n                    \
         writer; 0 issues no writes, so the run stays\n                    \
         bit-identical to a frozen (no-flag) run\n  \
         --mutation-seed N seed of the write-decision + mutation stream\n                    \
         (default 11; independent of --seed)\n  \
         --write-buffer N  bounded write-buffer capacity (default 1024;\n                    \
         accepts block when full)\n  \
         --max-batch N     max mutations applied per epoch swap (default 64)\n  \
         --timeout-ms N    per-attempt timeout (default 5000)\n  \
         --retries N       max attempts per request (default 3)\n  \
         --name NAME       report name: BENCH_stress_<name>.* (default run)\n  \
         --quiet           one-line summary instead of the full table\n\n\
         ENVIRONMENT:\n  \
         VCGP_WORKERS      engine logical worker count for analytics runs\n                    \
         (positive integer, capped at 1024; default: CPU count).\n                    \
         Answers are identical for any worker count.\n  \
         VCGP_THREADS      OS threads driving those workers (0 = auto:\n                    \
         min(workers, cores)). Answers are thread-count\n                    \
         independent; only wall clock changes.\n  \
         VCGP_STEAL_CHUNK  work-stealing chunk size in vertices (default\n                    \
         1024; 0 disables stealing). Deterministic for any\n                    \
         value.\n  \
         VCGP_PARTITIONING engine + shard placement strategy: hash | range\n                    \
         (default hash). Applies to both engine workers and\n                    \
         shard vertex ownership (--shards)."
    );
}

fn flag_value<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid {what}: {s:?}"))
}

fn parse_flag<T: std::str::FromStr>(
    args: &[String],
    key: &str,
    default: T,
) -> Result<T, String> {
    match flag_value(args, key) {
        Some(s) => parse(s, key),
        None => Ok(default),
    }
}

fn build_graph(args: &[String]) -> Result<Graph, String> {
    if let Some(path) = flag_value(args, "--graph") {
        let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        let directed = args.iter().any(|a| a == "--directed");
        return io::read_edge_list(std::io::BufReader::new(file), directed)
            .map_err(|e| format!("parse {path}: {e}"));
    }
    let spec = flag_value(args, "--gen").unwrap_or("gnm-connected:512:2048:7");
    let parts: Vec<&str> = spec.split(':').collect();
    let p = |i: usize, what: &str| -> Result<usize, String> {
        parse(parts.get(i).copied().ok_or_else(|| format!("--gen missing {what}"))?, what)
    };
    let s = |i: usize| -> Result<u64, String> {
        parse(parts.get(i).copied().ok_or("--gen missing seed")?, "seed")
    };
    match parts[0] {
        "gnm-connected" => Ok(generators::gnm_connected(p(1, "n")?, p(2, "m")?, s(3)?)),
        "digraph" => Ok(generators::digraph_gnm(p(1, "n")?, p(2, "m")?, s(3)?)),
        "labeled" => Ok(generators::labeled_digraph(
            p(1, "n")?,
            p(2, "m")?,
            parse(parts.get(3).copied().ok_or("--gen missing labels")?, "labels")?,
            s(4)?,
        )),
        "tree" => Ok(generators::random_tree(p(1, "n")?, s(2)?)),
        "bipartite" => Ok(generators::complete_bipartite(p(1, "nl")?, p(2, "nr")?)),
        other => Err(format!("unknown generator {other:?}")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let quiet = args.iter().any(|a| a == "--quiet");
    let name = flag_value(args, "--name").unwrap_or("run");
    let graph = Arc::new(build_graph(args)?);
    let mut mix = Mix::preset(flag_value(args, "--mix").unwrap_or("points"), &graph)?;
    if let Some(s) = flag_value(args, "--zipf-s") {
        mix = mix.with_zipf(parse(s, "--zipf-s")?)?;
    }

    let shards: usize = parse_flag(args, "--shards", 1usize)?;
    if shards < 1 {
        return Err("--shards must be at least 1".to_string());
    }
    let replicas: usize = parse_flag(args, "--replicas", 1usize)?;
    if replicas < 1 {
        return Err("--replicas must be at least 1".to_string());
    }
    let repeat: usize = parse_flag(args, "--repeat", 1usize)?;
    if repeat < 1 {
        return Err("--repeat must be at least 1".to_string());
    }
    let cache_capacity = if args.iter().any(|a| a == "--cache-off") {
        0
    } else {
        parse_flag(args, "--cache-capacity", ServiceConfig::default().cache_capacity)?
    };
    let write_ratio: f64 = parse_flag(args, "--write-ratio", 0.0f64)?;
    if !(0.0..=1.0).contains(&write_ratio) {
        return Err("--write-ratio must be within 0.0..=1.0".to_string());
    }
    // Passing --write-ratio at all (even 0) starts the epoch writer, so a
    // `--write-ratio 0` run exercises the full mutation machinery while
    // issuing no writes — the CI gate that proves the write path is inert
    // on the read stream. Omitting the flag keeps the service read-only.
    let mutations = if flag_value(args, "--write-ratio").is_some() {
        Some(MutationConfig {
            write_buffer: parse_flag(args, "--write-buffer", MutationConfig::default().write_buffer)?,
            max_batch: parse_flag(args, "--max-batch", MutationConfig::default().max_batch)?,
            keep_history: false,
        })
    } else {
        None
    };
    let service_cfg = ServiceConfig {
        executors: parse_flag(args, "--executors", ServiceConfig::default().executors)?,
        queue_capacity: parse_flag(args, "--queue", 128usize)?,
        queue_policy: flag_value(args, "--queue-policy")
            .map(QueueFullPolicy::parse)
            .transpose()?
            .unwrap_or_default(),
        max_attempts: parse_flag(args, "--retries", 3u32)?,
        seed: parse_flag(args, "--seed", 7u64)?,
        cache_capacity,
        mutations,
        replicas,
        routing: flag_value(args, "--routing")
            .map(RoutingPolicy::parse)
            .transpose()?
            .unwrap_or_default(),
        ..ServiceConfig::default()
    };
    let driver_cfg = DriverConfig {
        clients: parse_flag(args, "--clients", 4usize)?,
        duration: Duration::from_secs_f64(parse_flag(args, "--duration", 2.0f64)?),
        ops_limit: flag_value(args, "--ops").map(|s| parse(s, "--ops")).transpose()?,
        rate: flag_value(args, "--rate").map(|s| parse(s, "--rate")).transpose()?,
        burst: parse_flag(args, "--burst", 1u32)?,
        seed: parse_flag(args, "--seed", 7u64)?,
        timeout: Duration::from_millis(parse_flag(args, "--timeout-ms", 5000u64)?),
        write_ratio,
        mutation_seed: parse_flag(args, "--mutation-seed", 11u64)?,
    };

    if !quiet {
        println!(
            "graph: n={} m={} {} | mix {} ({} workloads) | {} clients, {} executors, \
             {} shard{} x {} replica{} ({})",
            graph.num_vertices(),
            graph.num_edges(),
            if graph.is_directed() { "directed" } else { "undirected" },
            mix.name(),
            mix.workloads().len(),
            driver_cfg.clients,
            service_cfg.executors,
            shards,
            if shards == 1 { "" } else { "s" },
            replicas,
            if replicas == 1 { "" } else { "s" },
            service_cfg.routing.label(),
        );
    }

    // --repeat runs the same seeded stream against the SAME service process:
    // pass 1 warms the result cache, later passes hit it, and the per-pass
    // reports (scoped by the driver's counter baseline) make both the hit
    // counts and the answer hashes comparable.
    let reports = if shards > 1 || replicas > 1 {
        let service = ShardedGraphService::start(Arc::clone(&graph), service_cfg, shards);
        let reports: Vec<_> = (0..repeat).map(|_| driver::run(&service, &mix, &driver_cfg)).collect();
        service.shutdown();
        reports
    } else {
        let service = GraphService::start(Arc::clone(&graph), service_cfg);
        let reports: Vec<_> = (0..repeat).map(|_| driver::run(&service, &mix, &driver_cfg)).collect();
        service.shutdown();
        reports
    };

    for (pass, report) in reports.iter().enumerate() {
        let report_name = if repeat == 1 {
            format!("stress_{name}")
        } else {
            format!("stress_{name}-pass{}", pass + 1)
        };
        let json_text = report.to_json(&report_name);
        let md_text = report.to_markdown(&report_name);
        // Self-check before writing: the report must parse with our own reader.
        json::parse(&json_text).map_err(|e| format!("internal: emitted invalid JSON: {e}"))?;
        let (json_path, md_path) =
            vcgp_testkit::bench::write_report(&report_name, &json_text, &md_text)
                .map_err(|e| format!("write report: {e}"))?;

        if quiet {
            println!(
                "{}: {} ops, {} errors, {:.1} ops/s, p99 {:.3} ms, {} cache hits, \
                 answers {:016x} -> {}",
                report_name,
                report.ops,
                report.errors,
                report.throughput(),
                report.latency.quantile(0.99) as f64 / 1e6,
                report.cache_hits,
                report.answer_hash,
                json_path.display()
            );
        } else {
            println!("\n{md_text}");
            println!("reports: {} and {}", json_path.display(), md_path.display());
        }
    }
    Ok(())
}

/// Parses a JSON report and enforces the CI gate: well formed, has the
/// expected shape, completed at least one operation, and zero errors.
fn validate_report(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: malformed JSON: {e}"))?;
    let num = |key: &str| -> Result<f64, String> {
        doc.get(key)
            .and_then(json::Value::as_f64)
            .ok_or_else(|| format!("{path}: missing numeric field {key:?}"))
    };
    for key in ["latency_ns", "service_ns", "gather_ns"] {
        let h = doc.get(key).ok_or_else(|| format!("{path}: missing {key:?}"))?;
        for q in ["p50", "p90", "p99", "p999", "max"] {
            h.get(q)
                .and_then(json::Value::as_f64)
                .ok_or_else(|| format!("{path}: missing {key}.{q}"))?;
        }
    }
    let shards = num("shards")?;
    let replicas = num("replicas")?;
    if replicas < 1.0 {
        return Err(format!("{path}: replicas is {replicas} (expected >= 1)"));
    }
    match doc.get("routing") {
        Some(json::Value::String(_)) => {}
        Some(_) => return Err(format!("{path}: routing is not a string")),
        None => return Err(format!("{path}: missing \"routing\"")),
    }
    for key in ["routed", "scattered", "rejects", "early_drops"] {
        num(key)?;
    }
    // The answer hash is emitted as a 16-digit hex string (u64 does not fit
    // an f64 exactly).
    match doc.get("answer_hash") {
        Some(json::Value::String(s))
            if s.len() == 16 && s.chars().all(|c| c.is_ascii_hexdigit()) => {}
        Some(_) => return Err(format!("{path}: answer_hash is not a 16-digit hex string")),
        None => return Err(format!("{path}: missing \"answer_hash\"")),
    }
    // The result-cache section: all counters present and internally
    // consistent (hits + misses = all cacheable lookups ≥ insertions).
    let cache = doc.get("cache").ok_or_else(|| format!("{path}: missing \"cache\""))?;
    let cache_num = |key: &str| -> Result<f64, String> {
        cache
            .get(key)
            .and_then(json::Value::as_f64)
            .ok_or_else(|| format!("{path}: missing numeric field cache.{key:?}"))
    };
    cache_num("hits")?;
    let misses = cache_num("misses")?;
    let insertions = cache_num("insertions")?;
    for key in ["evictions", "resident_bytes"] {
        cache_num(key)?;
    }
    if insertions > misses {
        return Err(format!(
            "{path}: cache.insertions ({insertions}) exceeds cache.misses ({misses})"
        ));
    }
    // The freshness section: writer counters plus the four freshness
    // histograms, with the count identities the epoch subsystem guarantees
    // (every swap records exactly one pause and one lag sample; every
    // mutation leaving the buffer is applied or a no-op; every accepted
    // write records one accept latency).
    let writes = num("writes")?;
    let write_errors = num("write_errors")?;
    let epochs = doc.get("epochs").ok_or_else(|| format!("{path}: missing \"epochs\""))?;
    let epoch_num = |key: &str| -> Result<f64, String> {
        epochs
            .get(key)
            .and_then(json::Value::as_f64)
            .ok_or_else(|| format!("{path}: missing numeric field epochs.{key:?}"))
    };
    for key in ["epoch", "accepted", "pending"] {
        epoch_num(key)?;
    }
    let swaps = epoch_num("swaps")?;
    let applied = epoch_num("applied")?;
    let noops = epoch_num("noops")?;
    let hist_count = |key: &str| -> Result<f64, String> {
        let h = epochs.get(key).ok_or_else(|| format!("{path}: missing epochs.{key:?}"))?;
        for q in ["count", "min", "mean", "p50", "p90", "p99", "p999", "max"] {
            h.get(q)
                .and_then(json::Value::as_f64)
                .ok_or_else(|| format!("{path}: missing epochs.{key}.{q}"))?;
        }
        h.get("count")
            .and_then(json::Value::as_f64)
            .ok_or_else(|| format!("{path}: missing epochs.{key}.count"))
    };
    for (key, expect, what) in [
        ("swap_pause_ns", swaps, "swaps"),
        ("freshness_lag_ns", swaps, "swaps"),
        ("write_apply_ns", applied + noops, "applied + noops"),
        ("write_accept_ns", writes - write_errors, "writes - write_errors"),
    ] {
        let count = hist_count(key)?;
        if count != expect {
            return Err(format!(
                "{path}: epochs.{key}.count is {count} but {what} is {expect}"
            ));
        }
    }
    // Per-shard occupancy: one entry per shard, each with identity and
    // counter fields.
    let per_shard = match doc.get("per_shard") {
        Some(json::Value::Array(entries)) => entries,
        Some(_) => return Err(format!("{path}: per_shard is not an array")),
        None => return Err(format!("{path}: missing \"per_shard\"")),
    };
    if per_shard.len() != shards as usize {
        return Err(format!(
            "{path}: per_shard has {} entries for {} shards",
            per_shard.len(),
            shards
        ));
    }
    for (i, entry) in per_shard.iter().enumerate() {
        for key in [
            "shard",
            "owned",
            "completed",
            "failed",
            "rejects",
            "early_drops",
            "cache_hits",
            "queue_hwm",
            "busy_ns",
        ] {
            entry
                .get(key)
                .and_then(json::Value::as_f64)
                .ok_or_else(|| format!("{path}: per_shard[{i}] missing {key:?}"))?;
        }
        // Per-replica rows: one per replica core, and the shard-level
        // counters must be exactly the fold of its replicas (completed
        // sums; queue_hwm is a max over independent queues).
        let rows = match entry.get("replicas") {
            Some(json::Value::Array(rows)) => rows,
            Some(_) => return Err(format!("{path}: per_shard[{i}].replicas is not an array")),
            None => return Err(format!("{path}: per_shard[{i}] missing \"replicas\"")),
        };
        if rows.len() != replicas as usize {
            return Err(format!(
                "{path}: per_shard[{i}] has {} replica rows for {} replicas",
                rows.len(),
                replicas
            ));
        }
        let mut sum_completed = 0.0;
        let mut max_hwm = 0.0f64;
        for (r, row) in rows.iter().enumerate() {
            for key in ["replica", "completed", "failed", "queue_hwm", "busy_ns"] {
                row.get(key)
                    .and_then(json::Value::as_f64)
                    .ok_or_else(|| {
                        format!("{path}: per_shard[{i}].replicas[{r}] missing {key:?}")
                    })?;
            }
            sum_completed += row.get("completed").and_then(json::Value::as_f64).unwrap();
            max_hwm = max_hwm.max(row.get("queue_hwm").and_then(json::Value::as_f64).unwrap());
        }
        let shard_completed =
            entry.get("completed").and_then(json::Value::as_f64).unwrap();
        if shard_completed != sum_completed {
            return Err(format!(
                "{path}: per_shard[{i}].completed is {shard_completed} but replica rows \
                 sum to {sum_completed}"
            ));
        }
        let shard_hwm = entry.get("queue_hwm").and_then(json::Value::as_f64).unwrap();
        if shard_hwm != max_hwm {
            return Err(format!(
                "{path}: per_shard[{i}].queue_hwm is {shard_hwm} but replica rows max \
                 to {max_hwm}"
            ));
        }
    }
    // The top-level drop counters are defined as per-shard sums — hold the
    // report to that. Same for cache hits: the cache section's hit count is
    // the sum of each shard core's run-scoped delta.
    for (total, total_key, shard_key) in [
        (num("rejects")?, "rejects", "rejects"),
        (num("early_drops")?, "early_drops", "early_drops"),
        (cache_num("hits")?, "cache.hits", "cache_hits"),
    ] {
        let summed: f64 = per_shard
            .iter()
            .filter_map(|e| e.get(shard_key).and_then(json::Value::as_f64))
            .sum();
        if total != summed {
            return Err(format!(
                "{path}: {total_key} is {total} but per_shard sums to {summed}"
            ));
        }
    }
    let ops = num("ops")?;
    let errors = num("errors")?;
    if ops < 1.0 {
        return Err(format!("{path}: no operations completed"));
    }
    if errors != 0.0 {
        return Err(format!("{path}: {errors} errored requests (expected 0)"));
    }
    Ok(format!(
        "{path}: ok ({} ops, 0 errors, {:.1} ops/s)",
        ops as u64,
        num("throughput_ops_s")?
    ))
}
