//! Key-population distributions for scenario op mixes.
//!
//! A point-lookup operation in a scenario draws its vertex id from a
//! [`KeySampler`]: a distribution kind ([`DistSpec`]) resolved against a
//! concrete id span. Every draw is a pure function of the per-operation
//! RNG the mix derives from `(seed, index)` — no sampler state survives a
//! draw — so any number of client threads can sample concurrently and two
//! runs with the same seed draw the *identical* key sequence regardless of
//! interleaving (the cql-stress seeded row-generation construction,
//! generalized from the PR 8 [`Zipf`] sampler).
//!
//! Spec syntax (one token, used by the scenario parser and `to_text`):
//!
//! ```text
//! uniform              every id in the span equally likely
//! sequential           id = index mod span (a scan; ignores the RNG)
//! gaussian             bell curve centered mid-span, stddev = span / 6
//! gaussian:MEAN:STD    explicit center and spread (fractions of the span)
//! zipfian:S            zipf with exponent S; rank 0 = id 0 = hottest
//! ```

use crate::mix::Zipf;
use vcgp_graph::SplitMix64;

/// A parsed, span-independent distribution kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DistSpec {
    /// Uniform over the span.
    Uniform,
    /// `index mod span` — a deterministic scan over the id space.
    Sequential,
    /// Gaussian with mean and stddev given as *fractions of the span*
    /// (`None` = centered at 0.5 with stddev 1/6, so ±3σ covers the span).
    Gaussian(Option<(f64, f64)>),
    /// Zipfian over ranks with the given exponent (rank 0 = id 0).
    Zipfian(f64),
}

impl DistSpec {
    /// Parses one spec token (see the module docs for the grammar).
    pub fn parse(token: &str) -> Result<DistSpec, String> {
        let mut parts = token.split(':');
        let head = parts.next().unwrap_or("");
        let rest: Vec<&str> = parts.collect();
        match head {
            "uniform" if rest.is_empty() => Ok(DistSpec::Uniform),
            "sequential" if rest.is_empty() => Ok(DistSpec::Sequential),
            "gaussian" if rest.is_empty() => Ok(DistSpec::Gaussian(None)),
            "gaussian" if rest.len() == 2 => {
                let mean: f64 = rest[0]
                    .parse()
                    .map_err(|_| format!("invalid gaussian mean {:?}", rest[0]))?;
                let std: f64 = rest[1]
                    .parse()
                    .map_err(|_| format!("invalid gaussian stddev {:?}", rest[1]))?;
                if !(mean.is_finite() && std.is_finite() && std > 0.0) {
                    return Err(format!(
                        "gaussian needs a finite mean and a positive stddev, got {token:?}"
                    ));
                }
                Ok(DistSpec::Gaussian(Some((mean, std))))
            }
            "zipfian" if rest.len() == 1 => {
                let s: f64 = rest[0]
                    .parse()
                    .map_err(|_| format!("invalid zipfian exponent {:?}", rest[0]))?;
                if !(s > 0.0 && s.is_finite()) {
                    return Err(format!(
                        "zipfian exponent must be positive and finite, got {s}"
                    ));
                }
                Ok(DistSpec::Zipfian(s))
            }
            _ => Err(format!(
                "unknown distribution {token:?} (expected uniform, sequential, \
                 gaussian[:MEAN:STD], or zipfian:S)"
            )),
        }
    }

    /// The canonical spec token, re-parsable by [`DistSpec::parse`].
    pub fn to_text(&self) -> String {
        match self {
            DistSpec::Uniform => "uniform".to_string(),
            DistSpec::Sequential => "sequential".to_string(),
            DistSpec::Gaussian(None) => "gaussian".to_string(),
            DistSpec::Gaussian(Some((m, s))) => format!("gaussian:{m}:{s}"),
            DistSpec::Zipfian(s) => format!("zipfian:{s}"),
        }
    }

    /// Resolves the spec against a concrete id span.
    pub fn sampler(&self, span: usize) -> KeySampler {
        assert!(span >= 1, "key span must be non-empty");
        let kind = match *self {
            DistSpec::Uniform => SamplerKind::Uniform,
            DistSpec::Sequential => SamplerKind::Sequential,
            DistSpec::Gaussian(params) => {
                let (mean_frac, std_frac) = params.unwrap_or((0.5, 1.0 / 6.0));
                SamplerKind::Gaussian {
                    mean: mean_frac * (span as f64 - 1.0),
                    std: (std_frac * span as f64).max(f64::MIN_POSITIVE),
                }
            }
            DistSpec::Zipfian(s) => SamplerKind::Zipfian(Zipf::new(span, s)),
        };
        KeySampler { span, kind }
    }
}

#[derive(Debug, Clone, Copy)]
enum SamplerKind {
    Uniform,
    Sequential,
    Gaussian { mean: f64, std: f64 },
    Zipfian(Zipf),
}

/// A [`DistSpec`] resolved against an id span: draws one vertex id per
/// operation, purely from the operation's RNG (plus the stream index for
/// `sequential`).
#[derive(Debug, Clone, Copy)]
pub struct KeySampler {
    span: usize,
    kind: SamplerKind,
}

impl KeySampler {
    /// The id span keys are drawn from (`[0, span)`).
    pub fn span(&self) -> usize {
        self.span
    }

    /// Draws the key for operation `index` from `rng` (the per-operation
    /// RNG seeded by `(seed, index)` — see [`crate::mix`]). Pure: the same
    /// `(index, rng state)` always yields the same key, and every key is
    /// within `[0, span)`.
    pub fn sample(&self, index: u64, rng: &mut SplitMix64) -> u32 {
        match self.kind {
            SamplerKind::Uniform => rng.next_index(self.span) as u32,
            SamplerKind::Sequential => (index % self.span as u64) as u32,
            SamplerKind::Gaussian { mean, std } => {
                // Box-Muller from two uniform draws; guard ln(0).
                let u1 = rng.next_f64().max(f64::MIN_POSITIVE);
                let u2 = rng.next_f64();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let v = (mean + z * std).round();
                v.clamp(0.0, self.span as f64 - 1.0) as u32
            }
            SamplerKind::Zipfian(z) => z.sample(rng) as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcgp_graph::rng::mix3;

    fn draw(spec: &DistSpec, span: usize, seed: u64, index: u64) -> u32 {
        let mut rng = SplitMix64::new(mix3(seed, index, 0x4D49_5853));
        spec.sampler(span).sample(index, &mut rng)
    }

    #[test]
    fn parse_round_trips_every_kind() {
        for token in ["uniform", "sequential", "gaussian", "gaussian:0.25:0.1", "zipfian:1.2"] {
            let spec = DistSpec::parse(token).unwrap();
            assert_eq!(DistSpec::parse(&spec.to_text()).unwrap(), spec, "{token}");
        }
    }

    #[test]
    fn parse_rejects_malformed_tokens() {
        for token in [
            "unknown",
            "uniform:1",
            "gaussian:0.5",
            "gaussian:a:b",
            "gaussian:0.5:-0.1",
            "zipfian",
            "zipfian:0",
            "zipfian:nan",
        ] {
            assert!(DistSpec::parse(token).is_err(), "{token} should be rejected");
        }
    }

    #[test]
    fn every_kind_is_pure_and_in_range() {
        let specs = [
            DistSpec::Uniform,
            DistSpec::Sequential,
            DistSpec::Gaussian(None),
            DistSpec::Gaussian(Some((0.1, 0.05))),
            DistSpec::Zipfian(1.0),
        ];
        for spec in &specs {
            for span in [1usize, 7, 300] {
                for i in 0..200u64 {
                    let a = draw(spec, span, 9, i);
                    let b = draw(spec, span, 9, i);
                    assert_eq!(a, b, "{spec:?} span {span} index {i}");
                    assert!((a as usize) < span, "{spec:?} drew {a} outside span {span}");
                }
            }
        }
    }

    #[test]
    fn sequential_scans_the_span() {
        let spec = DistSpec::Sequential;
        for i in 0..30u64 {
            assert_eq!(draw(&spec, 10, 3, i), (i % 10) as u32);
        }
    }

    #[test]
    fn gaussian_concentrates_around_its_mean() {
        let span = 1000usize;
        let centered = DistSpec::Gaussian(None);
        let near_mid = (0..2000u64)
            .map(|i| draw(&centered, span, 5, i))
            .filter(|&v| (300..700).contains(&v))
            .count();
        // ±1.2σ of a centered default covers well over half the mass; a
        // uniform draw would put only 40% there.
        assert!(near_mid > 1400, "only {near_mid}/2000 near the center");
        let low = DistSpec::Gaussian(Some((0.1, 0.05)));
        let near_low = (0..2000u64)
            .map(|i| draw(&low, span, 5, i))
            .filter(|&v| v < 200)
            .count();
        assert!(near_low > 1800, "only {near_low}/2000 near the shifted mean");
    }

    #[test]
    fn zipfian_skews_toward_rank_zero() {
        let span = 1000usize;
        let spec = DistSpec::Zipfian(1.0);
        let low = (0..2000u64)
            .map(|i| draw(&spec, span, 5, i))
            .filter(|&v| v < 100)
            .count();
        // Uniform would land ~200 draws in the lowest decile.
        assert!(low > 600, "zipfian low-id mass {low}/2000 not skewed");
    }
}
