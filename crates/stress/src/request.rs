//! Typed requests and responses of the graph-query service.

use crate::epoch::EpochSnapshot;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vcgp_core::service::Partial;
use vcgp_core::Workload;
use vcgp_graph::VertexId;

/// What a request asks the service to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Run one Table 1 workload end to end on the resident graph.
    Workload(Workload),
    /// One scattered leg of a workload: compute the executing shard's
    /// owned-slice partial. Produced by the shard router when it fans an
    /// analytics request out; a single-instance service treats it as a
    /// whole-graph partial (it owns every vertex).
    WorkloadPartial(Workload),
    /// Out-degree of a vertex (point lookup).
    Degree(VertexId),
    /// Out-neighbor list of a vertex (point lookup).
    Neighbors(VertexId),
    /// Test hook: hold an executor for the given duration, then succeed.
    /// Lets tests drive the timeout/retry path deterministically without
    /// depending on a workload being slow on the test machine.
    DebugSleep(Duration),
    /// Test hook: panic inside the executor. Lets tests verify panic
    /// containment (the executor must survive and answer
    /// [`QueryError::Panicked`](crate::request::QueryError::Panicked)).
    DebugPanic,
}

impl QueryKind {
    /// Short label for reports and logs.
    pub fn label(&self) -> String {
        match self {
            QueryKind::Workload(w) => format!("{w:?}"),
            QueryKind::WorkloadPartial(w) => format!("partial:{w:?}"),
            QueryKind::Degree(_) => "degree".to_string(),
            QueryKind::Neighbors(_) => "neighbors".to_string(),
            QueryKind::DebugSleep(_) => "debug-sleep".to_string(),
            QueryKind::DebugPanic => "debug-panic".to_string(),
        }
    }
}

/// One unit of work submitted to the service.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Caller-chosen identifier, echoed in the response. Also salts the
    /// retry-jitter stream, so give each request a distinct id.
    pub id: u64,
    /// The computation to run.
    pub kind: QueryKind,
    /// Seed for source-parameterized workloads (forwarded to
    /// [`vcgp_core::service::run_workload`]).
    pub seed: u64,
    /// Per-attempt latency budget. An attempt whose execution exceeds this
    /// counts as timed out and is retried (the engine cannot be interrupted
    /// mid-superstep, so the check is post-hoc).
    pub timeout: Duration,
    /// Optional absolute deadline for the whole request, retries included.
    /// Expired requests fail fast without consuming an execution slot.
    pub deadline: Option<Instant>,
    /// The epoch snapshot this request is pinned to, stamped by the
    /// service at submission (snapshot isolation: the request serves this
    /// version of the graph even if the writer swaps in a newer epoch
    /// mid-flight). `None` only before submission; backends fall back to
    /// epoch 0.
    pub epoch: Option<Arc<EpochSnapshot>>,
}

impl QueryRequest {
    /// A request with the given id and kind and no deadline; the per-attempt
    /// timeout defaults to five seconds.
    pub fn new(id: u64, kind: QueryKind) -> Self {
        QueryRequest {
            id,
            kind,
            seed: id,
            timeout: Duration::from_secs(5),
            deadline: None,
            epoch: None,
        }
    }

    /// Sets the per-attempt timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sets the absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the workload seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Successful payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// Workload result: the scalar answer plus run costs.
    Workload {
        /// Workload-specific scalar (component count, matched edges, …).
        answer: u64,
        /// Supersteps the run took.
        supersteps: u64,
        /// Algorithm-level messages the run sent.
        messages: u64,
    },
    /// One shard's contribution to a scattered workload (merged by the
    /// router's gather step into a [`QueryOutput::Workload`]).
    WorkloadPartial {
        /// The owned-slice partial.
        partial: Partial,
        /// Supersteps of this shard's run.
        supersteps: u64,
        /// Messages of this shard's run.
        messages: u64,
    },
    /// Out-degree.
    Degree(usize),
    /// Out-neighbor list.
    Neighbors(Vec<VertexId>),
    /// The debug sleep completed.
    Slept,
}

/// Why a request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The workload's preconditions do not hold on the resident graph.
    /// Never retried — the graph will not change.
    Unsupported(String),
    /// A vertex id outside the graph. Never retried.
    NoSuchVertex(VertexId),
    /// Every attempt exceeded the per-attempt timeout.
    Timeout {
        /// Attempts consumed (equals the configured maximum).
        attempts: u32,
    },
    /// The absolute deadline passed before an attempt could succeed.
    DeadlineExceeded,
    /// The queue was full and the service's admission policy is
    /// [`QueueFullPolicy::Reject`](crate::service::QueueFullPolicy::Reject):
    /// the request was shed at submission instead of blocking the producer.
    Rejected,
    /// The execution panicked; the message is the panic payload. The
    /// executor survives — panics are contained per request.
    Panicked(String),
    /// The service was shut down before the request could run.
    ShuttingDown,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Unsupported(m) => write!(f, "unsupported: {m}"),
            QueryError::NoSuchVertex(v) => write!(f, "no such vertex: {v}"),
            QueryError::Timeout { attempts } => {
                write!(f, "timed out after {attempts} attempts")
            }
            QueryError::DeadlineExceeded => write!(f, "deadline exceeded"),
            QueryError::Rejected => write!(f, "rejected: queue full"),
            QueryError::Panicked(m) => write!(f, "execution panicked: {m}"),
            QueryError::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

impl std::error::Error for QueryError {}

/// How a sharded front-end dispatched a request (echoed in the response so
/// load drivers can count routed-vs-scattered traffic without asking the
/// service).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Route {
    /// Answered by a single-instance service (or a non-sharded path).
    #[default]
    Direct,
    /// Owner-routed to exactly one shard (and one replica core within it).
    Routed {
        /// The shard that served the request.
        shard: u32,
        /// The replica core within the shard the routing policy picked
        /// (always 0 when the shard is unreplicated).
        replica: u32,
    },
    /// Scattered to every shard and gather-merged.
    Scattered {
        /// Number of shard legs fanned out.
        shards: u32,
    },
}

/// The service's answer to one request, with per-request cost metrics.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// Echo of [`QueryRequest::id`].
    pub id: u64,
    /// The payload or the failure.
    pub result: Result<QueryOutput, QueryError>,
    /// Execution attempts consumed (0 when the request never ran, e.g.
    /// expired deadline or shutdown). For scattered requests, the maximum
    /// across legs.
    pub attempts: u32,
    /// Time spent waiting in the service queue before the first attempt
    /// (maximum across legs when scattered).
    pub queue_wait: Duration,
    /// Total execution time across all attempts (excludes queueing and
    /// backoff). For scattered requests, the *sum* across legs — the
    /// aggregate compute the request burned on the fleet.
    pub service_time: Duration,
    /// Total time spent backing off between attempts (summed across legs
    /// when scattered).
    pub backoff: Duration,
    /// How the request was dispatched.
    pub route: Route,
    /// Straggler penalty of a scattered request: how long the gatherer
    /// waited for the remaining shards after the first leg it collected
    /// had answered. Zero for non-scattered requests.
    pub gather_wait: Duration,
}

impl QueryResponse {
    /// True when the request produced a payload.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }

    /// Retries beyond the first attempt.
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }
}
